"""Output statistics collection — tallies, time-weighted series, reports.

The taxonomy's *visual output analyzer* axis observes that "generally a
simulation generates huge amounts of data" that is "difficult to be analyzed
using a pure text format".  This module is the headless equivalent: it
collects the numbers every surveyed simulator reports (utilization, queue
lengths, response times), reduces them with sound statistics (time-weighted
means, batch means, Student-t confidence intervals), and renders them as
CSV, markdown, or quick ASCII plots.

Three collector kinds
---------------------
:class:`Tally`
    Observation-based statistic (one value per completed job, transfer...).
:class:`TimeWeighted`
    Level statistic integrated over time (queue length, number in service);
    the mean is ∫level·dt / T, *not* the mean of recorded points.
:class:`Counter`
    Monotone event counts with rate reporting.

A :class:`Monitor` bundles named collectors for one model and produces the
summary table.  All hot-path updates are O(1) appends; numpy reductions run
only at report time, per the optimization guides (vectorize the analysis,
keep the inner loop lean).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .errors import ConfigurationError

__all__ = ["Tally", "TimeWeighted", "Counter", "Monitor", "ascii_plot"]


class Tally:
    """Observation-based statistic with optional raw-sample retention.

    Moments use Welford's online algorithm, which stays accurate where the
    textbook sum-of-squares formula cancels catastrophically (large means,
    small variances — exactly what simulation response times look like).
    """

    def __init__(self, name: str, keep_samples: bool = True) -> None:
        self.name = name
        self.keep_samples = keep_samples
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0  # sum of squared deviations from the running mean
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: list[float] = []

    def record(self, value: float) -> None:
        """Add one observation."""
        v = float(value)
        self._n += 1
        self._sum += v
        delta = v - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (v - self._mean)
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if self.keep_samples:
            self._samples.append(v)

    # -- reductions ---------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (Welford)."""
        if self._n < 2:
            return math.nan
        return max(0.0, self._m2 / (self._n - 1))

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (NaN when empty)."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation (NaN when empty)."""
        return self._max if self._n else math.nan

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._sum

    def quantile(self, q: float) -> float:
        """Empirical quantile; requires ``keep_samples=True``."""
        if not self.keep_samples:
            raise ConfigurationError(f"tally {self.name!r} does not retain samples")
        if not self._samples:
            return math.nan
        return float(np.quantile(np.asarray(self._samples), q))

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t CI half-width around the mean: (mean, halfwidth)."""
        if self._n < 2:
            return (self.mean, math.inf)
        from scipy import stats  # local import keeps module import cheap

        t = stats.t.ppf(0.5 + level / 2.0, self._n - 1)
        half = t * self.std / math.sqrt(self._n)
        return (self.mean, float(half))

    def batch_means(self, nbatches: int = 10) -> tuple[float, float]:
        """Batch-means CI (mean, halfwidth) — the standard cure for the
        autocorrelation in steady-state simulation output."""
        if not self.keep_samples:
            raise ConfigurationError(f"tally {self.name!r} does not retain samples")
        if self._n < 2 * nbatches:
            return self.confidence_interval()
        arr = np.asarray(self._samples)
        usable = (len(arr) // nbatches) * nbatches
        means = arr[:usable].reshape(nbatches, -1).mean(axis=1)
        from scipy import stats

        t = stats.t.ppf(0.975, nbatches - 1)
        half = t * means.std(ddof=1) / math.sqrt(nbatches)
        return (float(means.mean()), float(half))

    @property
    def samples(self) -> np.ndarray:
        """Retained raw observations as an array (empty if not retained)."""
        return np.asarray(self._samples, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tally {self.name!r} n={self._n} mean={self.mean:.4g}>"


class TimeWeighted:
    """Level statistic integrated over simulation time.

    ``set(t, level)`` records a level change at time *t*; the time-average
    up to *t_end* weights each level by how long it persisted.  The classic
    use is L (number in system) for Little's-law checks.
    """

    def __init__(self, name: str, initial: float = 0.0, start_time: float = 0.0,
                 keep_series: bool = False) -> None:
        self.name = name
        self.keep_series = keep_series
        self._level = float(initial)
        self._last_t = float(start_time)
        self._start_t = float(start_time)
        self._area = 0.0
        self._areasq = 0.0
        self._min = float(initial)
        self._max = float(initial)
        self._series: list[tuple[float, float]] = [(start_time, initial)] if keep_series else []

    def set(self, t: float, level: float) -> None:
        """Record that the level becomes *level* at time *t*."""
        t = float(t)
        if t < self._last_t:
            raise ConfigurationError(
                f"time-weighted stat {self.name!r}: time went backwards "
                f"({t} < {self._last_t})"
            )
        dt = t - self._last_t
        self._area += self._level * dt
        self._areasq += self._level * self._level * dt
        self._last_t = t
        self._level = float(level)
        if self._level < self._min:
            self._min = self._level
        if self._level > self._max:
            self._max = self._level
        if self.keep_series:
            self._series.append((t, self._level))

    def add(self, t: float, delta: float) -> None:
        """Increment the level by *delta* at time *t*."""
        self.set(t, self._level + delta)

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def mean(self, t_end: float | None = None) -> float:
        """Time-average level over [start, t_end] (default: last update)."""
        t = self._last_t if t_end is None else float(t_end)
        span = t - self._start_t
        if span <= 0:
            return self._level
        area = self._area + self._level * (t - self._last_t)
        return area / span

    def variance(self, t_end: float | None = None) -> float:
        """Time-weighted variance of the level."""
        t = self._last_t if t_end is None else float(t_end)
        span = t - self._start_t
        if span <= 0:
            return 0.0
        area = self._area + self._level * (t - self._last_t)
        areasq = self._areasq + self._level ** 2 * (t - self._last_t)
        m = area / span
        return max(0.0, areasq / span - m * m)

    @property
    def minimum(self) -> float:
        """Lowest level ever held."""
        return self._min

    @property
    def maximum(self) -> float:
        """Highest level ever held."""
        return self._max

    @property
    def series(self) -> list[tuple[float, float]]:
        """(time, level) step series; empty unless ``keep_series=True``."""
        return list(self._series)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TimeWeighted {self.name!r} level={self._level:.4g} mean={self.mean():.4g}>"


class Counter:
    """Monotone event counter with rate reporting."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._first_t: float | None = None
        self._last_t: float | None = None

    def increment(self, t: float, by: int = 1) -> None:
        """Count *by* events at time *t* (by must be >= 0)."""
        if by < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        self._count += by
        if self._first_t is None:
            self._first_t = float(t)
        self._last_t = float(t)

    @property
    def count(self) -> int:
        """Total events counted."""
        return self._count

    def rate(self, t_end: float | None = None) -> float:
        """Events per unit time over the observed span."""
        if self._first_t is None:
            return 0.0
        end = self._last_t if t_end is None else float(t_end)
        span = end - self._first_t
        return self._count / span if span > 0 else math.inf

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name!r} n={self._count}>"


class Monitor:
    """Named bundle of collectors for one simulation model.

    Collectors are created on first use, so models write
    ``monitor.tally("response_time").record(w)`` without registration
    boilerplate.
    """

    def __init__(self, name: str = "monitor") -> None:
        self.name = name
        self._tallies: dict[str, Tally] = {}
        self._levels: dict[str, TimeWeighted] = {}
        self._counters: dict[str, Counter] = {}

    def tally(self, name: str, keep_samples: bool = True) -> Tally:
        """Get-or-create the named observation tally."""
        t = self._tallies.get(name)
        if t is None:
            t = Tally(name, keep_samples=keep_samples)
            self._tallies[name] = t
        return t

    def level(self, name: str, initial: float = 0.0, start_time: float = 0.0,
              keep_series: bool = False) -> TimeWeighted:
        """Get-or-create the named time-weighted level."""
        lv = self._levels.get(name)
        if lv is None:
            lv = TimeWeighted(name, initial=initial, start_time=start_time,
                              keep_series=keep_series)
            self._levels[name] = lv
        return lv

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        c = self._counters.get(name)
        if c is None:
            c = Counter(name)
            self._counters[name] = c
        return c

    @property
    def tallies(self) -> dict[str, Tally]:
        """Shallow copy of the tally map."""
        return dict(self._tallies)

    @property
    def levels(self) -> dict[str, TimeWeighted]:
        """Shallow copy of the level map."""
        return dict(self._levels)

    @property
    def counters(self) -> dict[str, Counter]:
        """Shallow copy of the counter map."""
        return dict(self._counters)

    # -- reporting -----------------------------------------------------------

    def summary(self, t_end: float | None = None) -> dict[str, dict[str, float]]:
        """Flat dict-of-dicts summary, JSON/CSV-friendly.

        Values are coerced to builtin ``int``/``float`` (never numpy scalars
        or live collector references), so a summary survives
        ``pickle``/``json`` round-trips across process boundaries — campaign
        workers ship these dicts back over the result queue.
        """
        out: dict[str, dict[str, float]] = {}
        for name, t in sorted(self._tallies.items()):
            out[f"tally.{name}"] = {
                "n": int(t.count), "mean": float(t.mean), "std": float(t.std),
                "min": float(t.minimum), "max": float(t.maximum),
            }
        for name, lv in sorted(self._levels.items()):
            out[f"level.{name}"] = {
                "mean": float(lv.mean(t_end)), "min": float(lv.minimum),
                "max": float(lv.maximum), "final": float(lv.level),
            }
        for name, c in sorted(self._counters.items()):
            out[f"counter.{name}"] = {"n": int(c.count),
                                      "rate": float(c.rate(t_end))}
        return out

    def report(self, t_end: float | None = None) -> str:
        """Human-readable fixed-width summary table."""
        rows = [f"== {self.name} =="]
        for key, vals in self.summary(t_end).items():
            cells = "  ".join(f"{k}={_fmt(v)}" for k, v in vals.items())
            rows.append(f"  {key:<36} {cells}")
        return "\n".join(rows)

    def to_markdown(self, t_end: float | None = None) -> str:
        """Summary as a markdown table (one row per collector)."""
        keys: list[str] = []
        rows = []
        summary = self.summary(t_end)
        for vals in summary.values():
            for k in vals:
                if k not in keys:
                    keys.append(k)
        header = "| collector | " + " | ".join(keys) + " |"
        sep = "|---|" + "|".join("---:" for _ in keys) + "|"
        for key, vals in summary.items():
            cells = " | ".join(_fmt(vals[k]) if k in vals else "" for k in keys)
            rows.append(f"| `{key}` | {cells} |")
        return "\n".join([header, sep, *rows])

    def to_csv(self, t_end: float | None = None) -> str:
        """Summary as CSV text (collector, statistic, value)."""
        lines = ["collector,statistic,value"]
        for key, vals in self.summary(t_end).items():
            for stat, v in vals.items():
                lines.append(f"{key},{stat},{v!r}")
        return "\n".join(lines) + "\n"


def _fmt(v: float) -> str:
    # Empty collectors reduce to NaN (no observations yet); a bare "nan"
    # in a report table reads like a bug, so render an em dash instead.
    # CSV output keeps repr(nan) — machine formats must stay lossless.
    if isinstance(v, float) and math.isnan(v):
        return "—"
    if isinstance(v, float) and math.isinf(v):
        return str(v)
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def ascii_plot(xs: Iterable[float], ys: Iterable[float], width: int = 60,
               height: int = 15, label: str = "") -> str:
    """Minimal ASCII scatter/line plot for terminal-only environments.

    A stand-in for the *visual output analyzer* taxonomy axis: good enough
    to eyeball backlog growth or makespan curves in CI logs.
    """
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size == 0 or x.size != y.size:
        return "(no data)"
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = float(x.min()), float(x.max())
    y0, y1 = float(y.min()), float(y.max())
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    for xi, yi in zip(x, y):
        c = min(width - 1, int((xi - x0) / xspan * (width - 1)))
        r = min(height - 1, int((yi - y0) / yspan * (height - 1)))
        grid[height - 1 - r][c] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{label}  [y: {y0:.4g}..{y1:.4g}]  [x: {x0:.4g}..{x1:.4g}]"
    return header + "\n" + "\n".join(lines)
