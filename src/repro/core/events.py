"""Event records for the discrete-event kernel.

An :class:`Event` is an immutable-ish record of *when* something happens and
*what* to do about it.  Ordering is total and deterministic:

1. simulation ``time`` (earlier first),
2. ``priority`` (numerically smaller first — :data:`Priority.URGENT` beats
   :data:`Priority.NORMAL` at the same timestamp),
3. insertion sequence number (FIFO among exact ties).

The deterministic tiebreak is what makes every engine run reproducible: two
runs with the same seed produce byte-identical event streams (taxonomy axis
*behavior = deterministic/probabilistic* — determinism is a kernel guarantee,
randomness enters only through :mod:`repro.core.rng` streams).

Cancellation is *lazy with eager purging*: :meth:`Event.cancel` flags the
record and every queue implementation discards flagged events at pop time,
giving O(1) cancel on every structure.  To stop dead records from occupying
queue slots until their timestamp comes up, the owning queue registers a
cancel hook (``_on_cancel``) at push time; the hook maintains a per-queue
dead-record counter that triggers threshold compaction (see
:meth:`repro.core.queues.base.EventQueue.compact`).
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from .errors import EventCancelledError

__all__ = ["Priority", "Event"]


class Priority(enum.IntEnum):
    """Discrete priority bands for same-timestamp ordering.

    Smaller values run first.  The bands leave numeric gaps so models can
    define finer-grained levels (any ``int`` is accepted by the kernel).
    """

    URGENT = 0
    HIGH = 10
    NORMAL = 20
    LOW = 30

    #: Kernel-internal band used for end-of-run bookkeeping; always last.
    FINALIZE = 1_000_000


class Event:
    """One scheduled occurrence.

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    seq:
        Monotone insertion counter supplied by the engine; the final
        tiebreak, guaranteeing FIFO order among exact ties.
    fn:
        Callback invoked as ``fn(*args, **kwargs)`` when the event fires.
    priority:
        Same-timestamp ordering band (smaller first).
    label:
        Optional human-readable tag; shows up in traces and ``repr``.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "kwargs", "label",
                 "_cancelled", "_on_cancel", "obs_span")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: dict | None = None,
        priority: int = Priority.NORMAL,
        label: str = "",
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}
        self.label = label
        self._cancelled = False
        #: set by the owning queue at push time, cleared at pop time; lets
        #: the queue keep an exact dead-record count for eager purging.
        self._on_cancel: Callable[[], None] | None = None
        #: the tracer's lifecycle span (:mod:`repro.obs`), or None when the
        #: owning simulator is unobserved.  A dedicated slot rather than a
        #: tracer-side dict so the instrumented dispatch loop reads it
        #: without a hash lookup; the untraced path only ever stores None.
        self.obs_span: object | None = None

    # -- ordering -----------------------------------------------------------

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """The total-order key ``(time, priority, seq)``."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Event") -> bool:
        return self.sort_key <= other.sort_key

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    # -- lifecycle ----------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called; the event will not fire."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event dead.  O(1) amortized; queues skip dead events at
        pop time and purge them eagerly once enough accumulate.

        Cancelling twice is a no-op (idempotent), matching how models
        typically tear down timers defensively.
        """
        if self._cancelled:
            return
        self._cancelled = True
        cb = self._on_cancel
        if cb is not None:
            self._on_cancel = None
            cb()

    def fire(self) -> Any:
        """Invoke the callback.  Raises if the event was cancelled."""
        if self._cancelled:
            raise EventCancelledError(f"cannot fire cancelled event {self!r}")
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        dead = " CANCELLED" if self._cancelled else ""
        fn_name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6g} prio={self.priority} seq={self.seq}{tag} fn={fn_name}{dead}>"
