"""Exception hierarchy for the simulation kernel.

Every error raised deliberately by :mod:`repro` derives from
:class:`SimulationError`, so callers can catch kernel problems without
swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "EventCancelledError",
    "StopSimulation",
    "ProcessError",
    "InterruptError",
    "ResourceError",
    "CapacityError",
    "TraceFormatError",
    "TopologyError",
    "RoutingError",
    "CatalogError",
    "EconomyError",
    "ValidationError",
    "ConfigurationError",
]


class SimulationError(Exception):
    """Base class for all errors raised by the simulation framework."""


class SchedulingError(SimulationError):
    """An event was scheduled illegally (e.g. in the past, or after stop)."""


class EventCancelledError(SimulationError):
    """An operation was attempted on an event that has been cancelled."""


class StopSimulation(Exception):  # noqa: N818 - control-flow signal, not an error
    """Control-flow signal that stops the event loop immediately.

    Raise from inside an event handler (or call
    :meth:`repro.core.engine.Simulator.stop`) to end the run.  It derives
    from ``Exception`` directly rather than :class:`SimulationError` so a
    blanket ``except SimulationError`` in user code never eats it.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


class ProcessError(SimulationError):
    """A simulation process misbehaved (bad yield, dead process resumed...)."""


class InterruptError(SimulationError):
    """Thrown *into* a process when another entity interrupts it.

    The ``cause`` attribute carries the interrupter-supplied payload.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ResourceError(SimulationError):
    """Illegal resource operation (double release, foreign request...)."""


class CapacityError(ResourceError):
    """A request exceeded a resource's total capacity and can never succeed."""


class TraceFormatError(SimulationError):
    """An event-trace or monitoring file is malformed."""


class TopologyError(SimulationError):
    """Network topology construction or lookup failed."""


class RoutingError(TopologyError):
    """No route exists between two endpoints."""


class CatalogError(SimulationError):
    """Replica-catalog inconsistency (unknown file, duplicate registration)."""


class EconomyError(SimulationError):
    """Computational-economy violation (overspend, bad price)."""


class ValidationError(SimulationError):
    """Analytic-model validation could not be computed (e.g. unstable queue)."""


class ConfigurationError(SimulationError):
    """A model was configured with inconsistent or out-of-range parameters."""
