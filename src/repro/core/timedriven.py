"""Time-driven DES — fixed-increment advancement on the kernel's model API.

The taxonomy's DES-kind axis: "a time-driven DES advances by fixed time
increments and is useful for modeling events that occur at regular time
intervals.  An event-driven DES is more efficient than a time-driven DES
since it does not step through regular time intervals when no event occurs."

:class:`TimeDrivenSimulator` subclasses the event-driven kernel and changes
only the advancement discipline: the clock moves tick by tick, and every
event scheduled inside a tick interval fires *at the tick boundary* (its
timestamp is quantized up).  Models written against :class:`Simulator`
therefore run unchanged — which is exactly what benchmark E3 needs to make
the efficiency comparison apples-to-apples, and which also quantifies the
accuracy cost of quantization (events within a tick lose their relative
spacing but keep their order).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .engine import Simulator
from .errors import SchedulingError, StopSimulation
from .events import Event, Priority
from .queues import EventQueue

__all__ = ["TimeDrivenSimulator"]


class TimeDrivenSimulator(Simulator):
    """Fixed-increment simulator: the clock visits every multiple of *tick*.

    Parameters
    ----------
    tick:
        Increment size.  Event timestamps are quantized **up** to the next
        tick boundary at scheduling time, mirroring how a time-stepped
        engine only observes the world once per step.
    """

    def __init__(
        self,
        tick: float = 1.0,
        queue: EventQueue | str = "heap",
        seed: int = 0,
        start_time: float = 0.0,
    ) -> None:
        if tick <= 0:
            raise SchedulingError(f"tick must be positive, got {tick}")
        super().__init__(queue=queue, seed=seed, start_time=start_time)
        self.tick = float(tick)
        self._ticks_stepped = 0
        self._latest_scheduled = float(start_time)

    @property
    def ticks_stepped(self) -> int:
        """How many increments the clock has visited (the E3 cost metric)."""
        return self._ticks_stepped

    def _quantize(self, time: float) -> float:
        """Round *time* up to the next tick boundary."""
        k = math.ceil((time - 1e-12) / self.tick)
        return k * self.tick

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.NORMAL,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule at *time*, quantized up to the next tick boundary."""
        qt = max(self._quantize(time), self._now)
        if qt > self._latest_scheduled:
            self._latest_scheduled = qt
        return super().schedule_at(
            qt, fn, *args, priority=priority, label=label, **kwargs,
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Advance tick by tick, firing each tick's quantized events.

        Unlike the event-driven parent, the loop cost is proportional to the
        number of *ticks* in the horizon, not the number of events: an empty
        tick still costs one iteration.  ``until`` defaults to the time of
        the last scheduled event (rounded up) so a bounded run terminates.
        """
        auto_horizon = until is None
        if auto_horizon:
            if math.isinf(self.peek_time()):
                return
            until = self._latest_scheduled
        budget = math.inf if max_events is None else int(max_events)
        fired = 0
        self._stopped = False
        self._stop_reason = ""
        pop_if_le = self._queue.pop_if_le
        obs = self._obs
        # Integer tick index avoids additive float drift over long runs.
        k = math.ceil((self._now - 1e-12) / self.tick)
        try:
            while (t := k * self.tick) <= until + 1e-12 and not self._stopped:
                self._now = t
                self._ticks_stepped += 1
                # Fire everything quantized to this boundary, in priority
                # order; the fused pop_if_le makes each firing a single
                # queue touch.
                while True:
                    ev = pop_if_le(t + 1e-12)
                    if ev is None:
                        break
                    fired += 1
                    if self.pre_event_hooks:
                        for hook in self.pre_event_hooks:
                            hook(ev)
                    if obs is None:
                        try:
                            ev.fire()
                        except StopSimulation as sig:
                            self._stopped = True
                            self._stop_reason = sig.reason or "StopSimulation"
                            break
                    else:
                        t0 = obs.begin_fire(ev)
                        try:
                            ev.fire()
                        except StopSimulation as sig:
                            self._stopped = True
                            self._stop_reason = sig.reason or "StopSimulation"
                            break
                        finally:
                            obs.end_fire(ev, t0)
                    if fired >= budget:
                        raise SchedulingError(
                            f"max_events budget of {max_events} exhausted at t={self._now}"
                        )
                if auto_horizon and self._latest_scheduled > until:
                    until = self._latest_scheduled  # model extended horizon
                k += 1
        finally:
            self._events_executed += fired
        if not self._stopped and until is not None and self._now < until:
            self._now = until
