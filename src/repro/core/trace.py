"""Event traces: recording executed runs and reading monitored input.

Covers two taxonomy axes at once:

* **DES kind / trace-driven** — "a trace-driven DES proceeds by reading in a
  set of events that are collected independently from another environment".
  A :class:`TraceRecorder` attached to any engine captures the executed
  event stream as :class:`TraceRecord` rows; :mod:`repro.core.tracedriven`
  replays them.
* **input data** — "simulators can be classified as including input data
  generators or as accepting data sets collected by monitoring" (MONARC 2
  accepts MonALISA data).  The text format here is a MonALISA-like
  tab-separated monitoring log: ``time  source  kind  value  attrs...``,
  with read/write helpers and validation.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TextIO

from .errors import TraceFormatError
from .events import Event

__all__ = ["TraceRecord", "TraceRecorder", "write_trace", "read_trace", "parse_trace_line"]

_HEADER = "# repro-trace v1"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One row of a trace: an observed occurrence in some environment.

    ``attrs`` carries free-form key=value metadata (job id, site name...).
    """

    time: float
    source: str
    kind: str
    value: float = 0.0
    attrs: dict[str, str] = field(default_factory=dict)

    def to_line(self) -> str:
        """Serialize to one tab-separated monitoring-format line."""
        extra = "".join(
            f"\t{k}={_escape(v)}" for k, v in sorted(self.attrs.items())
        )
        return f"{self.time!r}\t{_escape(self.source)}\t{_escape(self.kind)}\t{self.value!r}{extra}"


def _escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")


def _unescape(s: str) -> str:
    out = []
    it = iter(s)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"t": "\t", "n": "\n", "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def parse_trace_line(line: str, lineno: int = 0) -> TraceRecord:
    """Parse one monitoring-format line into a :class:`TraceRecord`."""
    parts = line.rstrip("\n").split("\t")
    if len(parts) < 4:
        raise TraceFormatError(
            f"line {lineno}: expected >=4 tab-separated fields, got {len(parts)}"
        )
    try:
        t = float(parts[0])
        value = float(parts[3])
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad numeric field: {exc}") from exc
    attrs: dict[str, str] = {}
    for chunk in parts[4:]:
        if "=" not in chunk:
            raise TraceFormatError(f"line {lineno}: bad attr {chunk!r} (need key=value)")
        k, _, v = chunk.partition("=")
        attrs[k] = _unescape(v)
    return TraceRecord(t, _unescape(parts[1]), _unescape(parts[2]), value, attrs)


def write_trace(records: Iterable[TraceRecord], fp: TextIO) -> int:
    """Serialize records to an open text file.  Returns the row count."""
    fp.write(_HEADER + "\n")
    n = 0
    for rec in records:
        fp.write(rec.to_line() + "\n")
        n += 1
    return n


def read_trace(fp: TextIO, require_sorted: bool = True) -> list[TraceRecord]:
    """Read a trace file, validating the header and time monotonicity.

    Monitoring systems deliver time-ordered logs; a jumbled file almost
    always means corrupt collection, so ``require_sorted`` defaults on.
    """
    first = fp.readline()
    if not first.startswith("#"):
        # Headerless files are accepted (raw monitoring dumps): rewind by
        # treating the first line as data.
        fp = io.StringIO(first + fp.read())
    records = []
    last_t = float("-inf")
    for lineno, line in enumerate(fp, start=1):
        if not line.strip() or line.startswith("#"):
            continue
        rec = parse_trace_line(line, lineno)
        if require_sorted and rec.time < last_t:
            raise TraceFormatError(
                f"line {lineno}: time went backwards ({rec.time} < {last_t})"
            )
        last_t = max(last_t, rec.time)
        records.append(rec)
    return records


class TraceRecorder:
    """Captures the event stream an engine executes.

    Attach with :meth:`attach`; every fired event becomes a
    :class:`TraceRecord` whose *kind* is the event label (or the callback's
    qualified name as fallback).  The result feeds
    :class:`~repro.core.tracedriven.TraceDrivenSimulator` for replay, or
    :func:`write_trace` for archival.
    """

    def __init__(self, source: str = "sim",
                 event_filter: Callable[[Event], bool] | None = None) -> None:
        self.source = source
        self.event_filter = event_filter
        self.records: list[TraceRecord] = []

    def attach(self, sim) -> "TraceRecorder":
        """Hook into a :class:`~repro.core.engine.Simulator`; returns self."""
        sim.pre_event_hooks.append(self._on_event)
        return self

    def _on_event(self, ev: Event) -> None:
        if self.event_filter is not None and not self.event_filter(ev):
            return
        kind = ev.label or getattr(ev.fn, "__qualname__", "event")
        self.records.append(
            TraceRecord(ev.time, self.source, kind, float(ev.priority),
                        {"seq": str(ev.seq)})
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def dumps(self) -> str:
        """Serialize recorded rows to trace-format text."""
        buf = io.StringIO()
        write_trace(self.records, buf)
        return buf.getvalue()
