"""Optimistic distributed execution — Jefferson's Time Warp.

The taxonomy's *distributed execution* category splits into conservative
protocols (CMB null messages, synchronous windows — :mod:`repro.core.parallel`)
and **optimistic** ones, where logical processes execute whatever work they
have without waiting for safety guarantees and *undo* mis-speculated work
when a message from the past — a **straggler** — arrives.  Time Warp
(Jefferson 1985; surveyed by Fujimoto 1990, both cited in PAPERS.md) is the
canonical optimistic protocol; this module completes benchmark E7's
conservative-vs-optimistic comparison.

Mechanics implemented here, each the textbook piece:

* **State saving** — every ``checkpoint_every`` firings an LP checkpoint is
  taken through :meth:`LogicalProcess.snapshot` (clock, event list clones,
  RNG stream states, send sequence, plus model state from registered
  providers).
* **Input queue** — each LP's received messages are kept, processed *and*
  unprocessed, merged in the deterministic ``(receive time, source, send
  sequence)`` order shared with the conservative executors.
* **Rollback** — a straggler (or an anti-message for an already-processed
  message) restores the latest snapshot strictly older than the straggler
  time, returns later-processed messages to the input queue, and
  re-executes.  Re-execution below the straggler time is a *coast-forward*:
  deterministic replay whose sends are suppressed because the originals are
  still valid.
* **Anti-messages** — sends invalidated by a rollback are chased by
  anti-messages (aggressive cancellation).  An anti-message annihilates its
  positive in the destination's input queue, triggers a secondary rollback
  if the positive was already processed, or is remembered if it arrives
  first.
* **GVT** — the executor is round-based and single-threaded, so Global
  Virtual Time is an exact synchronous reduction each round: the minimum
  over LPs of unprocessed-message, in-transit-message, and pending-event
  times.  Nothing below GVT can ever be rolled back.
* **Fossil collection** — snapshots, processed messages, and output-log
  entries that GVT has made unreachable are reclaimed each round.

Determinism: the committed event stream is byte-identical to
:class:`~repro.core.parallel.SequentialExecutor` on the same partitioned
model.  Two caveats, both documented in DESIGN.md §5d: model events
explicitly scheduled at :data:`~repro.core.events.Priority.HIGH` for the
*current* timestamp from inside a handler may interleave differently with
message dispatches (use the default ``NORMAL``), and :class:`Event` handles
stored in registered state are not remapped across a rollback — make
cancellation decisions replayable from model state, or keep the schedule
and the cancel inside the same rollback frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from time import perf_counter
from typing import Optional, Sequence

from .errors import ConfigurationError, SchedulingError, StopSimulation
from .events import Event, Priority
from .parallel import (Channel, ExecutionStats, LogicalProcess, Message,
                       _collect_stats, _validate_horizon)

__all__ = ["OptimisticExecutor", "LPReport"]


@dataclass(slots=True)
class LPReport:
    """Per-LP Time Warp accounting, exposed as ``executor.lp_reports``."""

    rollbacks: int = 0
    #: total events undone (a coast-forward re-fires the still-valid ones)
    rolled_back_events: int = 0
    max_rollback_depth: int = 0
    antis_sent: int = 0
    #: positives removed before processing (in-queue or pre-arrival)
    annihilations: int = 0
    stragglers: int = 0
    snapshots_taken: int = 0


@dataclass(slots=True)
class _Snapshot:
    """One checkpoint: LP blob plus the executor-side cursors."""

    now: float
    #: value of the monotone processed-message counter at capture time —
    #: messages with a larger index were processed after this snapshot
    proc_count: int
    #: raw fired-event count at capture time (for rollback-depth metrics)
    events_executed: int
    blob: dict


class _Runtime:
    """Executor-private Time Warp state for one LP."""

    __slots__ = ("lp", "inbox", "unprocessed", "unprocessed_uids", "dead_uids",
                 "processed", "processed_uids", "proc_count", "out_log",
                 "snapshots", "pending_annihilation", "coast_until",
                 "fired_since_snapshot", "report")

    def __init__(self, lp: LogicalProcess) -> None:
        self.lp = lp
        #: in-transit messages appended by peers: (uid, Message, is_anti)
        self.inbox: list[tuple[int, Message, bool]] = []
        #: received-but-unprocessed heap: (recv_time, src, seq, uid, Message)
        self.unprocessed: list[tuple[float, str, int, int, Message]] = []
        self.unprocessed_uids: set[int] = set()
        #: uids annihilated while still sitting in `unprocessed` (lazy removal)
        self.dead_uids: set[int] = set()
        #: processed messages in processing order: (index, uid, Message)
        self.processed: list[tuple[int, int, Message]] = []
        self.processed_uids: set[int] = set()
        self.proc_count = 0
        #: chronological send log: (send_time, uid, Message, dst name)
        self.out_log: list[tuple[float, int, Message, str]] = []
        self.snapshots: list[_Snapshot] = []
        #: anti-messages that arrived before their positives
        self.pending_annihilation: set[int] = set()
        #: sends at sim times below this are replay of still-valid originals
        self.coast_until = -math.inf
        self.fired_since_snapshot = 0
        self.report = LPReport()


class OptimisticExecutor:
    """Time Warp: optimistic round-robin execution with rollback.

    Parameters
    ----------
    batch:
        Events each LP may fire per round.  Smaller batches interleave the
        LPs more tightly (fewer, shallower rollbacks); larger batches are
        more optimistic.
    checkpoint_every:
        Firings between state snapshots.  The classic space/time knob: a
        rollback restores the latest eligible snapshot and coast-forwards
        over at most this many events.
    throttle:
        Optional optimism window: when set, no LP executes past
        ``GVT + throttle`` within a round (bounded Time Warp).  ``None``
        (default) is pure, unthrottled optimism.
    max_rounds:
        Safety valve against livelock, mirroring :class:`CMBExecutor`.
    """

    name = "optimistic"

    def __init__(self, batch: int = 32, checkpoint_every: int = 8,
                 throttle: float | None = None,
                 max_rounds: int = 10_000_000) -> None:
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if throttle is not None and throttle <= 0:
            raise ConfigurationError(
                f"throttle must be > 0 (or None), got {throttle}")
        self.batch = batch
        self.checkpoint_every = checkpoint_every
        self.throttle = throttle
        self.max_rounds = max_rounds
        self._rts: dict[str, _Runtime] = {}
        self._lps: tuple[LogicalProcess, ...] = ()
        self._uid = 0
        #: per-LP accounting of the most recent run, keyed by LP name
        self.lp_reports: dict[str, LPReport] = {}

    # -- public protocol ------------------------------------------------------

    def run(self, lps: Sequence[LogicalProcess], until: float) -> ExecutionStats:
        wall0 = perf_counter()
        self._setup(lps, until)
        rounds = 0
        try:
            for _ in range(self.max_rounds):
                gvt = self._gvt()
                if gvt > until:
                    break
                # GVT is a global quantity: notify one binding per round
                # (bindings of one Observation share telemetry/metrics).
                for lp in self._lps:
                    obs = lp.sim._obs
                    if obs is not None:
                        obs.on_gvt(gvt)
                        break
                for rt in (self._rts[lp.name] for lp in self._lps):
                    self._fossil_collect(rt, gvt)
                rounds += 1
                for lp in self._lps:
                    self._turn(self._rts[lp.name], until, gvt)
            else:  # pragma: no cover - guarded by max_rounds
                raise SchedulingError(
                    "optimistic executor exceeded max_rounds; GVT is not "
                    "advancing (rollback livelock?)")
        finally:
            for lp in self._lps:
                lp._tw = None
        return self._finish(until, rounds, perf_counter() - wall0)

    # -- lifecycle pieces (split out so edge-case tests can drive rounds) -----

    def _setup(self, lps: Sequence[LogicalProcess], until: float) -> None:
        _validate_horizon(lps, until)
        names = [lp.name for lp in lps]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate LP names: {names}")
        for lp in lps:
            if lp._tw is not None:
                raise ConfigurationError(
                    f"LP {lp.name!r} is already inside an optimistic run")
        self._lps = tuple(lps)
        self._rts = {lp.name: _Runtime(lp) for lp in lps}
        self._uid = 0
        self.lp_reports = {}
        for lp in lps:
            lp._tw = self
        for lp in lps:
            rt = self._rts[lp.name]
            # Adopt messages sent before the run through the conservative
            # channel path (e.g. seeding sends made outside any executor).
            for ch in lp.inputs.values():
                for msg in ch.take_ready(math.inf):
                    self._uid += 1
                    rt.inbox.append((self._uid, msg, False))
            rt.snapshots.append(self._take_snapshot(rt))

    def _finish(self, until: float, rounds: int,
                wall: float) -> ExecutionStats:
        for lp in self._lps:
            if math.isfinite(until) and lp.sim.now < until:
                # Nothing at or below the horizon remains (GVT > until);
                # this only advances the clock for time-weighted statistics.
                lp.sim.run(until=until)
        stats = _collect_stats(self.name, self._lps, rounds)
        stats.wall_seconds = wall
        self.lp_reports = {name: rt.report for name, rt in self._rts.items()}
        stats.rollbacks = sum(r.rollbacks for r in self.lp_reports.values())
        stats.rolled_back_events = sum(
            r.rolled_back_events for r in self.lp_reports.values())
        stats.anti_messages = sum(
            r.antis_sent for r in self.lp_reports.values())
        stats.committed_events = stats.events - stats.rolled_back_events
        stats.efficiency = (stats.committed_events / stats.events
                            if stats.events else 1.0)
        return stats

    # -- message transport (called from LogicalProcess.send) ------------------

    def on_send(self, lp: LogicalProcess, ch: Channel, msg: Message) -> None:
        """Transport *msg*, logging it for potential anti-message cancellation."""
        rt = self._rts[lp.name]
        if lp.sim.now < rt.coast_until:
            # Coast-forward replay: the original message was kept valid by
            # the rollback (send_time below the straggler), so re-sending
            # would duplicate it.  The send sequence was still consumed,
            # keeping replay byte-identical.
            return
        dst_rt = self._rts.get(ch.dst.name)
        if dst_rt is None:
            raise ConfigurationError(
                f"LP {lp.name!r} sent to {ch.dst.name!r}, which is not part "
                f"of this optimistic run")
        obs = lp.sim._obs
        if obs is not None:
            obs.on_message_send(msg)
        ch.messages_sent += 1
        self._uid += 1
        rt.out_log.append((lp.sim.now, self._uid, msg, ch.dst.name))
        dst_rt.inbox.append((self._uid, msg, False))

    # -- one LP turn ----------------------------------------------------------

    def _turn(self, rt: _Runtime, until: float, gvt: float) -> None:
        lp = rt.lp
        trigger = self._integrate_inbox(rt)
        if trigger < math.inf:
            self._rollback(rt, trigger)
        sim = lp.sim
        queue = sim._queue
        bound = until if self.throttle is None else min(until,
                                                        gvt + self.throttle)
        fired = 0
        while fired < self.batch:
            head = self._peek_unprocessed(rt)
            ev = queue.peek()
            ev_t = ev.time if ev is not None else math.inf
            m_t = head[0] if head is not None else math.inf
            if min(m_t, ev_t) > bound:
                break
            if head is not None and (
                    ev is None or m_t < ev_t
                    or (m_t == ev_t and Priority.HIGH < ev.priority)):
                # The message's dispatch is the strict next firing: only now
                # does it enter the local event list, exactly as the
                # conservative executors deliver — so its sequence number,
                # and therefore every same-timestamp tiebreak, matches.
                self._integrate_message(rt, head)
                continue
            self._fire_one(rt, bound)
            fired += 1
            if rt.fired_since_snapshot >= self.checkpoint_every:
                rt.snapshots.append(self._take_snapshot(rt))

    def _integrate_inbox(self, rt: _Runtime) -> float:
        """Drain in-transit messages; return the rollback trigger time (inf
        when causality was not violated)."""
        if not rt.inbox:
            return math.inf
        inbox, rt.inbox = rt.inbox, []
        positives: dict[int, Message] = {}
        order: list[int] = []
        antis: list[tuple[int, Message]] = []
        for uid, msg, is_anti in inbox:
            if is_anti:
                antis.append((uid, msg))
            else:
                positives[uid] = msg
                order.append(uid)
        trigger = math.inf
        report = rt.report
        for uid, msg in antis:
            if uid in positives:
                # Annihilated while both were in transit (the anti caught
                # the positive it was chasing).
                del positives[uid]
                report.annihilations += 1
            elif uid in rt.processed_uids:
                # Secondary rollback: the mis-sent message already ran here.
                # Mark it dead so the rollback drops it instead of requeueing.
                trigger = min(trigger, msg.recv_time)
                rt.dead_uids.add(uid)
            elif uid in rt.unprocessed_uids:
                rt.dead_uids.add(uid)
                rt.unprocessed_uids.discard(uid)
                report.annihilations += 1
            else:
                # The anti overtook its positive (cannot happen with the
                # built-in FIFO transport, but the protocol tolerates it).
                rt.pending_annihilation.add(uid)
        now = rt.lp.sim.now
        for uid in order:
            msg = positives.get(uid)
            if msg is None:
                continue
            if uid in rt.pending_annihilation:
                rt.pending_annihilation.discard(uid)
                report.annihilations += 1
                continue
            if msg.recv_time <= now:
                # Straggler: this LP optimistically executed past the
                # message's receive time (<= because events *at* `now` have
                # already fired and the dispatch may need to precede them).
                trigger = min(trigger, msg.recv_time)
                report.stragglers += 1
            heappush(rt.unprocessed,
                     (msg.recv_time, msg.src, msg.seq, uid, msg))
            rt.unprocessed_uids.add(uid)
        return trigger

    def _peek_unprocessed(
            self, rt: _Runtime) -> Optional[tuple[float, str, int, int, Message]]:
        heap = rt.unprocessed
        while heap and heap[0][3] in rt.dead_uids:
            rt.dead_uids.discard(heap[0][3])
            heappop(heap)
        return heap[0] if heap else None

    def _integrate_message(self, rt: _Runtime,
                           entry: tuple[float, str, int, int, Message]) -> None:
        heappop(rt.unprocessed)
        recv_time, _src, _seq, uid, msg = entry
        rt.unprocessed_uids.discard(uid)
        rt.proc_count += 1
        rt.processed.append((rt.proc_count, uid, msg))
        rt.processed_uids.add(uid)
        sim = rt.lp.sim
        ev = sim.schedule_at(recv_time, rt.lp._dispatch, msg,
                             priority=Priority.HIGH, label=f"recv:{msg.kind}")
        obs = sim._obs
        if obs is not None:
            obs.on_message_recv(msg, ev)

    def _fire_one(self, rt: _Runtime, bound: float) -> None:
        lp = rt.lp
        sim = lp.sim
        ev = sim._queue.pop_if_le(bound)
        if ev is None:  # pragma: no cover - guarded by the caller's peek
            return
        sim._now = ev.time
        sim._events_executed += 1
        lp.events_executed_total += 1
        rt.fired_since_snapshot += 1
        hooks = sim.pre_event_hooks
        if hooks:
            for hook in hooks:
                hook(ev)
        obs = sim._obs
        try:
            if obs is None:
                ev.fn(*ev.args, **ev.kwargs)
            else:
                t0 = obs.begin_fire(ev)
                try:
                    ev.fn(*ev.args, **ev.kwargs)
                finally:
                    obs.end_fire(ev, t0)
        except StopSimulation as sig:
            raise ConfigurationError(
                f"StopSimulation ({sig.reason!r}) inside an optimistic run: "
                f"stop() cannot be rolled back; bound the run with `until` "
                f"instead") from sig
        if sim._stopped:
            # stop() only sets a flag; surface it with the same verdict.
            sim._stopped = False
            raise ConfigurationError(
                f"stop() ({sim._stop_reason!r}) inside an optimistic run: "
                f"a stop cannot be rolled back; bound the run with `until` "
                f"instead")

    # -- rollback -------------------------------------------------------------

    def _rollback(self, rt: _Runtime, trigger: float) -> None:
        """Undo everything at or after *trigger* virtual time on this LP."""
        lp = rt.lp
        sim = lp.sim
        snaps = rt.snapshots
        i = len(snaps) - 1
        # A snapshot taken exactly at the straggler's timestamp is NOT
        # eligible: events at that time had already fired into it.
        while i >= 0 and snaps[i].now >= trigger:
            i -= 1
        if i < 0:  # pragma: no cover - GVT keeps one eligible snapshot alive
            raise SchedulingError(
                f"time warp on LP {lp.name!r}: no snapshot below straggler "
                f"time {trigger}; the GVT invariant was violated")
        snap = snaps[i]
        depth = sim._events_executed - snap.events_executed
        report = rt.report
        report.rollbacks += 1
        report.rolled_back_events += depth
        if depth > report.max_rollback_depth:
            report.max_rollback_depth = depth
        obs = sim._obs
        if obs is not None:
            obs.on_rollback(sim.now, trigger, snap.now, depth)
        # Chase invalidated sends (send time >= trigger) with anti-messages.
        log = rt.out_log
        keep = len(log)
        while keep and log[keep - 1][0] >= trigger:
            keep -= 1
        for _st, uid, msg, dst in log[keep:]:
            report.antis_sent += 1
            self._rts[dst].inbox.append((uid, msg, True))
        del log[keep:]
        # Return messages processed after the snapshot to the input queue
        # (exact, tie-proof: by monotone processing index, not timestamp).
        while rt.processed and rt.processed[-1][0] > snap.proc_count:
            _idx, uid, msg = rt.processed.pop()
            rt.processed_uids.discard(uid)
            if uid in rt.dead_uids:
                # Annihilated by the anti that triggered this rollback.
                rt.dead_uids.discard(uid)
                report.annihilations += 1
            else:
                heappush(rt.unprocessed,
                         (msg.recv_time, msg.src, msg.seq, uid, msg))
                rt.unprocessed_uids.add(uid)
        lp.restore(snap.blob)
        # Replay below the trigger is a coast-forward: sends there re-create
        # messages whose originals were kept valid above, so suppress them.
        rt.coast_until = trigger
        del snaps[i + 1:]
        rt.fired_since_snapshot = 0

    # -- GVT and fossil collection --------------------------------------------

    def _gvt(self) -> float:
        """Exact synchronous GVT: min pending work across LPs and transit."""
        gvt = math.inf
        for lp in self._lps:
            rt = self._rts[lp.name]
            m = lp.sim.peek_time()
            head = self._peek_unprocessed(rt)
            if head is not None and head[0] < m:
                m = head[0]
            for _uid, msg, _anti in rt.inbox:
                if msg.recv_time < m:
                    m = msg.recv_time
            if m < gvt:
                gvt = m
        return gvt

    def _take_snapshot(self, rt: _Runtime) -> _Snapshot:
        rt.fired_since_snapshot = 0
        rt.report.snapshots_taken += 1
        sim = rt.lp.sim
        return _Snapshot(sim.now, rt.proc_count, sim._events_executed,
                         rt.lp.snapshot())

    def _fossil_collect(self, rt: _Runtime, gvt: float) -> None:
        """Reclaim state GVT proved unreachable.

        Future rollback triggers are >= GVT, so only the newest snapshot
        strictly below GVT (and everything after it) can ever be restored;
        messages processed at or before that snapshot can never be
        unprocessed, and sends below GVT can never need anti-messages.
        """
        snaps = rt.snapshots
        i = len(snaps) - 1
        while i > 0 and snaps[i].now >= gvt:
            i -= 1
        if i > 0:
            del snaps[:i]
        floor = snaps[0].proc_count
        if rt.processed and rt.processed[0][0] <= floor:
            committed = [e for e in rt.processed if e[0] <= floor]
            for _idx, uid, _msg in committed:
                rt.processed_uids.discard(uid)
            rt.processed = [e for e in rt.processed if e[0] > floor]
        log = rt.out_log
        j = 0
        while j < len(log) and log[j][0] < gvt:
            j += 1
        if j:
            del log[:j]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<OptimisticExecutor batch={self.batch} "
                f"checkpoint_every={self.checkpoint_every} "
                f"throttle={self.throttle}>")
