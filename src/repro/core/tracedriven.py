"""Trace-driven DES — replaying an externally collected event stream.

The taxonomy's third DES kind: "a trace-driven DES proceeds by reading in a
set of events that are collected independently from another environment and
[is] suitable for modeling a system that has executed before in another
environment."

:class:`TraceDrivenSimulator` pre-loads a list of
:class:`~repro.core.trace.TraceRecord` rows and dispatches each to a
*handler* keyed by the record's ``kind``.  Because the trace fixes every
occurrence time, a replay is exactly reproducible and — as benchmark E12
shows — usually faster than re-simulating the generating model, since all
the model logic that *produced* the events is skipped.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from .engine import Simulator
from .errors import TraceFormatError
from .events import Event, Priority
from .queues import EventQueue
from .trace import TraceRecord

__all__ = ["TraceDrivenSimulator"]

Handler = Callable[["TraceDrivenSimulator", TraceRecord], None]


class TraceDrivenSimulator(Simulator):
    """Replays a recorded trace through kind-keyed handlers.

    Usage::

        sim = TraceDrivenSimulator(records)
        sim.on("job_arrival", lambda sim, rec: model.arrive(rec))
        sim.run()

    Records whose kind has no handler are counted in ``unhandled`` rather
    than silently dropped (or raise, with ``strict=True``), because a typo'd
    handler name silently ignoring half a workload is the classic
    trace-replay bug.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        queue: EventQueue | str = "heap",
        seed: int = 0,
        strict: bool = False,
    ) -> None:
        recs = sorted(records, key=lambda r: r.time)
        if any(math.isnan(r.time) for r in recs):
            raise TraceFormatError("trace contains a record at NaN time")
        start = recs[0].time if recs else 0.0
        super().__init__(queue=queue, seed=seed, start_time=start)
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Handler | None = None
        self.strict = strict
        self.unhandled = 0
        self.replayed = 0
        # Bulk preload: the records are already sorted and can never be in
        # the past (start == recs[0].time), so skip schedule_at()'s
        # per-record validation and push straight onto the event list —
        # replay then runs entirely on the fused pop_if_le dispatch loop.
        push = self._queue.push
        for rec in recs:
            push(Event(rec.time, self._next_seq(), self._dispatch, (rec,),
                       priority=Priority.NORMAL, label=rec.kind))

    def on(self, kind: str, handler: Handler) -> "TraceDrivenSimulator":
        """Register *handler* for records of *kind*; chainable."""
        self._handlers[kind] = handler
        return self

    def on_default(self, handler: Handler) -> "TraceDrivenSimulator":
        """Register a catch-all handler for kinds with no specific one."""
        self._default_handler = handler
        return self

    def _dispatch(self, rec: TraceRecord) -> None:
        handler = self._handlers.get(rec.kind, self._default_handler)
        if handler is None:
            self.unhandled += 1
            if self.strict:
                raise TraceFormatError(
                    f"no handler for trace kind {rec.kind!r} at t={rec.time}"
                )
            return
        self.replayed += 1
        handler(self, rec)
