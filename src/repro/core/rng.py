"""Deterministic random-variate streams for probabilistic simulation.

The taxonomy's *behavior* axis separates **deterministic** from
**probabilistic** simulation.  This module is the single gate through which
randomness enters any model in :mod:`repro`: every stochastic entity draws
from its own named :class:`Stream`, and all streams descend from one root
seed via ``numpy.random.SeedSequence.spawn``.  Consequences:

* identical seed ⇒ byte-identical event trajectories (tested property);
* adding a new entity never perturbs the draws of existing ones (streams are
  independent by construction, not by draw-order accident) — the classic
  *common random numbers* discipline for variance reduction when comparing
  policies.

The distribution set covers what the surveyed simulators generate: Poisson
arrivals (exponential gaps), heavy-tailed service (Pareto, Weibull,
lognormal), Zipf file popularity (OptorSim), Erlang/hyperexponential stage
mixtures (MONARC stochastic arrival patterns), and empirical resampling for
monitored traces.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = ["Stream", "StreamFactory"]


class Stream:
    """One independent random-variate stream backed by a PCG64 generator.

    Not constructed directly in models — obtain streams from a
    :class:`StreamFactory` so independence and reproducibility hold.
    """

    def __init__(self, name: str, seed_seq: np.random.SeedSequence) -> None:
        self.name = name
        self._gen = np.random.Generator(np.random.PCG64(seed_seq))

    # -- continuous variates ---------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """U(low, high)."""
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean}")
        return float(self._gen.exponential(mean))

    def erlang(self, k: int, mean: float) -> float:
        """Erlang-k with total *mean* (sum of k exp stages)."""
        if k < 1:
            raise ConfigurationError(f"erlang shape must be >= 1, got {k}")
        return float(self._gen.gamma(k, mean / k))

    def hyperexponential(self, means: Sequence[float], probs: Sequence[float]) -> float:
        """Mixture of exponentials — a standard bursty-traffic model."""
        if len(means) != len(probs) or not means:
            raise ConfigurationError("means and probs must be equal-length, non-empty")
        if abs(sum(probs) - 1.0) > 1e-9:
            raise ConfigurationError(f"mixture probabilities must sum to 1, got {sum(probs)}")
        i = int(self._gen.choice(len(means), p=np.asarray(probs, dtype=float)))
        return self.exponential(means[i])

    def pareto(self, alpha: float, xmin: float = 1.0) -> float:
        """Pareto(alpha) scaled so the minimum value is *xmin*.

        Heavy-tailed for alpha <= 2; mean exists only for alpha > 1
        (mean = alpha*xmin/(alpha-1)).
        """
        if alpha <= 0 or xmin <= 0:
            raise ConfigurationError("pareto requires alpha > 0 and xmin > 0")
        return float(xmin * (1.0 + self._gen.pareto(alpha)))

    def weibull(self, shape: float, scale: float) -> float:
        """Weibull(shape) * scale."""
        if shape <= 0 or scale <= 0:
            raise ConfigurationError("weibull requires shape > 0 and scale > 0")
        return float(scale * self._gen.weibull(shape))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Lognormal parameterised by the *mean of the variate* and log-space sigma."""
        if mean <= 0 or sigma < 0:
            raise ConfigurationError("lognormal requires mean > 0 and sigma >= 0")
        mu = math.log(mean) - 0.5 * sigma * sigma
        return float(self._gen.lognormal(mu, sigma))

    def normal(self, mean: float, std: float, floor: float | None = None) -> float:
        """Gaussian, optionally truncated below at *floor* (by resampling shift)."""
        x = float(self._gen.normal(mean, std))
        if floor is not None and x < floor:
            return floor
        return x

    # -- discrete variates -------------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return int(self._gen.integers(low, high + 1))

    def choice(self, items: Sequence, weights: Sequence[float] | None = None):
        """Pick one element, optionally weighted (weights need not sum to 1)."""
        if not len(items):
            raise ConfigurationError("cannot choose from an empty sequence")
        if weights is None:
            return items[int(self._gen.integers(len(items)))]
        w = np.asarray(weights, dtype=float)
        if w.min() < 0 or w.sum() <= 0:
            raise ConfigurationError("weights must be non-negative with positive sum")
        return items[int(self._gen.choice(len(items), p=w / w.sum()))]

    def zipf(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed rank in [0, n): P(k) ∝ 1/(k+1)^s.

        The file-popularity law OptorSim-style replication studies assume.
        Computed by inverse-CDF over the finite support (exact, no rejection).
        """
        if n < 1:
            raise ConfigurationError(f"zipf support size must be >= 1, got {n}")
        ranks = np.arange(1, n + 1, dtype=float)
        pmf = ranks ** (-s)
        pmf /= pmf.sum()
        return int(self._gen.choice(n, p=pmf))

    def zipf_sampler(self, n: int, s: float = 1.0):
        """Return a zero-arg callable sampling Zipf ranks with a cached CDF.

        Use when drawing many ranks from the same (n, s) — avoids the
        O(n) pmf rebuild per draw of :meth:`zipf`.
        """
        if n < 1:
            raise ConfigurationError(f"zipf support size must be >= 1, got {n}")
        ranks = np.arange(1, n + 1, dtype=float)
        pmf = ranks ** (-s)
        cdf = np.cumsum(pmf / pmf.sum())

        def sample() -> int:
            return int(np.searchsorted(cdf, self._gen.random(), side="right"))

        return sample

    def poisson(self, lam: float) -> int:
        """Poisson counting variate (used for batch sizes)."""
        if lam < 0:
            raise ConfigurationError(f"poisson rate must be >= 0, got {lam}")
        return int(self._gen.poisson(lam))

    def empirical(self, samples: Sequence[float]) -> float:
        """Resample uniformly from observed data (monitored-input path)."""
        if not len(samples):
            raise ConfigurationError("empirical distribution needs at least one sample")
        return float(samples[int(self._gen.integers(len(samples)))])

    def bernoulli(self, p: float) -> bool:
        """True with probability *p*."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"bernoulli p must be in [0,1], got {p}")
        return bool(self._gen.random() < p)

    def shuffle(self, items: list) -> list:
        """Return a new list with *items* in random order (input untouched)."""
        out = list(items)
        self._gen.shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Stream {self.name!r}>"


class StreamFactory:
    """Spawns named, mutually independent :class:`Stream` objects from one seed.

    The same (seed, spawn order) always yields the same streams; streams are
    cached by name so asking twice returns the *same* stream object.
    """

    def __init__(self, seed: int = 0, spawn_key: str | None = None) -> None:
        self.seed = int(seed)
        self.spawn_key = spawn_key
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Get (or create) the stream with the given *name*.

        Stream identity is derived from the name's stable hash, not spawn
        order, so the set of *other* streams requested never affects the
        variates a given name produces.
        """
        st = self._streams.get(name)
        if st is None:
            digest = _stable_hash(name)
            seq = np.random.SeedSequence([self.seed, digest])
            st = Stream(name, seq)
            self._streams[name] = st
        return st

    def spawn(self, key: str | int) -> "StreamFactory":
        """Derive an independent child factory keyed by *key*.

        The child's root seed is a stable 63-bit hash of ``(seed, key)``, so
        the same (seed, key) pair names the same child on every machine and
        in every process — this is how campaign runs get per-replication
        RNG universes that a worker can reconstruct from two plain values.

        Child streams are drawn from ``SeedSequence([child_seed, name])``
        while in-run streams use ``SeedSequence([seed, name])``; distinct
        roots keep the two universes from ever sharing a stream, and
        spawning is composable (``spawn(a).spawn(b)`` is itself stable).
        """
        child_seed = _stable_hash(f"{self.seed}\x1fspawn\x1f{key}") \
            & 0x7FFFFFFFFFFFFFFF
        return StreamFactory(child_seed, spawn_key=str(key))

    def __repr__(self) -> str:  # pragma: no cover
        key = f" key={self.spawn_key!r}" if self.spawn_key is not None else ""
        return f"<StreamFactory seed={self.seed}{key} streams={len(self._streams)}>"


def _stable_hash(name: str) -> int:
    """64-bit FNV-1a of *name* — stable across processes (unlike ``hash``)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h
