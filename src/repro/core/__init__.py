"""The discrete-event simulation kernel.

Everything in :mod:`repro` runs on this kernel.  Quick tour:

* :class:`~repro.core.engine.Simulator` — event-driven engine (the default).
* :class:`~repro.core.timedriven.TimeDrivenSimulator` — fixed-increment engine.
* :class:`~repro.core.tracedriven.TraceDrivenSimulator` — trace replay engine.
* :mod:`~repro.core.queues` — six pluggable event-list structures (including
  the self-tuning :class:`~repro.core.queues.AdaptiveQueue`).
* :mod:`~repro.core.process` — "active objects" (process-oriented modeling).
* :mod:`~repro.core.resources` — servers, stores, containers.
* :mod:`~repro.core.rng` — reproducible random streams.
* :mod:`~repro.core.monitor` — output statistics.
* :mod:`~repro.core.parallel` — distributed execution (LPs, CMB, windows).
* :mod:`~repro.core.optimistic` — optimistic execution (Time Warp).
"""

from .engine import Simulator
from .errors import (
    CapacityError,
    CatalogError,
    ConfigurationError,
    EconomyError,
    EventCancelledError,
    InterruptError,
    ProcessError,
    ResourceError,
    RoutingError,
    SchedulingError,
    SimulationError,
    StopSimulation,
    TopologyError,
    TraceFormatError,
    ValidationError,
)
from .events import Event, Priority
from .monitor import Counter, Monitor, Tally, TimeWeighted, ascii_plot
from .optimistic import LPReport, OptimisticExecutor
from .parallel import (
    CMBExecutor,
    ExecutionStats,
    LogicalProcess,
    SequentialExecutor,
    WindowExecutor,
)
from .process import AllOf, AnyOf, Process, Signal, Waitable, spawn, timer
from .queues import QUEUE_FACTORIES, EventQueue, make_queue
from .resources import Container, Request, Resource, Store
from .rng import Stream, StreamFactory
from .timedriven import TimeDrivenSimulator
from .trace import TraceRecord, TraceRecorder, read_trace, write_trace
from .tracedriven import TraceDrivenSimulator

__all__ = [
    "Simulator",
    "TimeDrivenSimulator",
    "TraceDrivenSimulator",
    "Event",
    "Priority",
    "EventQueue",
    "QUEUE_FACTORIES",
    "make_queue",
    "Process",
    "Signal",
    "Waitable",
    "AnyOf",
    "AllOf",
    "spawn",
    "timer",
    "Resource",
    "Request",
    "Store",
    "Container",
    "Stream",
    "StreamFactory",
    "Monitor",
    "Tally",
    "TimeWeighted",
    "Counter",
    "ascii_plot",
    "LogicalProcess",
    "SequentialExecutor",
    "CMBExecutor",
    "WindowExecutor",
    "OptimisticExecutor",
    "LPReport",
    "ExecutionStats",
    "TraceRecord",
    "TraceRecorder",
    "read_trace",
    "write_trace",
    # errors
    "SimulationError",
    "SchedulingError",
    "EventCancelledError",
    "StopSimulation",
    "ProcessError",
    "InterruptError",
    "ResourceError",
    "CapacityError",
    "TraceFormatError",
    "TopologyError",
    "RoutingError",
    "CatalogError",
    "EconomyError",
    "ValidationError",
    "ConfigurationError",
]
