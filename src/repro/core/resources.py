"""Shared resources: servers with queues, item stores, bulk containers.

These are the queueing primitives every surveyed simulator builds on: a
CPU's run queue, a network port, a tape drive, a broker's admission queue.
They integrate with the process layer (request tokens are
:class:`~repro.core.process.Waitable`) but are equally usable from plain
event callbacks via the ``on_grant`` callback.

Queue disciplines follow the taxonomy's middleware discussion: FIFO, LIFO,
priority (smaller value first, FIFO within a class), and SJF-by-key.  Every
resource self-instruments (queue-length level, utilization level, wait-time
tally) so Little's-law validation (E4) can run against *any* model that uses
resources, not just the purpose-built queueing examples.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .engine import Simulator
from .errors import CapacityError, ConfigurationError, ResourceError
from .monitor import Monitor
from .process import Signal, Waitable

__all__ = ["Request", "Resource", "Store", "Container"]

_DISCIPLINES = ("fifo", "lifo", "priority", "sjf")


class Request(Waitable):
    """Token for one pending or granted resource acquisition.

    Completes (becomes yieldable-done) when the resource grants it.  The
    :attr:`preempted` signal fires if a preemptive resource revokes the
    grant; holders that care should wait on it (e.g. via ``AnyOf``).
    """

    _counter = 0

    def __init__(self, resource: "Resource", amount: int, priority: float,
                 key: float, owner: Any) -> None:
        super().__init__()
        Request._counter += 1
        self.id = Request._counter
        self.resource = resource
        self.amount = amount
        self.priority = priority
        self.key = key
        self.owner = owner
        self.issued_at = resource.sim.now
        self.granted_at: Optional[float] = None
        self.released_at: Optional[float] = None
        self.preempted = Signal(f"preempt-req{self.id}")

    @property
    def waited(self) -> float:
        """Queue delay experienced (NaN until granted)."""
        return (self.granted_at - self.issued_at) if self.granted_at is not None else float("nan")

    def __repr__(self) -> str:  # pragma: no cover
        st = "granted" if self.granted_at is not None else "queued"
        return f"<Request #{self.id} {st} amount={self.amount} prio={self.priority}>"


class Resource:
    """A multi-server resource with a bounded or unbounded wait queue.

    Parameters
    ----------
    capacity:
        Number of concurrently grantable units.
    discipline:
        ``"fifo"`` | ``"lifo"`` | ``"priority"`` | ``"sjf"``.
    queue_limit:
        Max queued requests; arrivals beyond it are *balked* (their token
        completes with ``None`` result and ``balked`` flag).  ``None`` =
        unbounded.
    preemptive:
        With ``discipline="priority"``, an arriving higher-priority request
        may revoke the grant of the lowest-priority holder.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "resource",
        discipline: str = "fifo",
        queue_limit: int | None = None,
        preemptive: bool = False,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if discipline not in _DISCIPLINES:
            raise ConfigurationError(
                f"unknown discipline {discipline!r}; choose from {_DISCIPLINES}")
        if preemptive and discipline != "priority":
            raise ConfigurationError("preemption requires the priority discipline")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.discipline = discipline
        self.queue_limit = queue_limit
        self.preemptive = preemptive
        self._in_use = 0
        self._queue: deque[Request] = deque()
        self._holders: list[Request] = []
        self.balked = 0
        self.monitor = Monitor(name)
        self._q_level = self.monitor.level("queue_length", start_time=sim.now)
        self._u_level = self.monitor.level("in_use", start_time=sim.now)
        self._wait_tally = self.monitor.tally("wait_time")

    # -- acquisition ------------------------------------------------------------

    def request(self, amount: int = 1, priority: float = 0.0, key: float = 0.0,
                owner: Any = None,
                on_grant: Callable[[Request], None] | None = None) -> Request:
        """Ask for *amount* units; returns a token to ``yield`` or poll.

        ``key`` orders the ``sjf`` discipline (e.g. job service demand).
        ``on_grant`` supports callback-style (non-process) models.
        """
        if amount < 1:
            raise ConfigurationError(f"request amount must be >= 1, got {amount}")
        if amount > self.capacity:
            raise CapacityError(
                f"{self.name}: requested {amount} > capacity {self.capacity}")
        req = Request(self, amount, priority, key, owner)
        if on_grant is not None:
            req._subscribe(lambda _result, r=req: on_grant(r))
        if self.queue_limit is not None and len(self._queue) >= self.queue_limit \
                and not self._can_grant(req):
            self.balked += 1
            req._complete(None)  # balked tokens complete immediately with None
            return req
        self._enqueue(req)
        self._dispatch()
        return req

    def release(self, req: Request) -> None:
        """Return a granted request's units to the pool."""
        if req.resource is not self:
            raise ResourceError(f"request {req.id} belongs to another resource")
        if req.granted_at is None:
            raise ResourceError(f"request {req.id} was never granted")
        if req.released_at is not None:
            raise ResourceError(f"request {req.id} already released")
        req.released_at = self.sim.now
        self._holders.remove(req)
        self._in_use -= req.amount
        self._u_level.set(self.sim.now, self._in_use)
        self._dispatch()

    def cancel(self, req: Request) -> None:
        """Withdraw a still-queued request (reneging)."""
        if req in self._queue:
            self._queue.remove(req)
            self._q_level.set(self.sim.now, len(self._queue))

    # -- internals ---------------------------------------------------------------

    def _enqueue(self, req: Request) -> None:
        if self.discipline == "lifo":
            self._queue.appendleft(req)
        else:
            self._queue.append(req)
        self._q_level.set(self.sim.now, len(self._queue))

    def _select_next(self) -> Optional[Request]:
        if not self._queue:
            return None
        if self.discipline in ("fifo", "lifo"):
            return self._queue[0]
        if self.discipline == "priority":
            return min(self._queue, key=lambda r: (r.priority, r.issued_at, r.id))
        return min(self._queue, key=lambda r: (r.key, r.issued_at, r.id))  # sjf

    def _can_grant(self, req: Request) -> bool:
        return self._in_use + req.amount <= self.capacity

    def _dispatch(self) -> None:
        """Grant queued requests while capacity allows; maybe preempt."""
        while True:
            nxt = self._select_next()
            if nxt is None:
                return
            if self._can_grant(nxt):
                self._queue.remove(nxt)
                self._grant(nxt)
                continue
            if self.preemptive:
                victim = self._preemption_victim(nxt)
                if victim is not None:
                    self._revoke(victim)
                    continue
            return

    def _preemption_victim(self, incoming: Request) -> Optional[Request]:
        """Lowest-priority holder strictly worse than *incoming*, if any."""
        if not self._holders:
            return None
        victim = max(self._holders, key=lambda r: (r.priority, -r.id))
        return victim if victim.priority > incoming.priority else None

    def _revoke(self, req: Request) -> None:
        req.released_at = self.sim.now
        self._holders.remove(req)
        self._in_use -= req.amount
        self._u_level.set(self.sim.now, self._in_use)
        req.preempted.fire(self.sim.now)

    def _grant(self, req: Request) -> None:
        req.granted_at = self.sim.now
        self._in_use += req.amount
        self._holders.append(req)
        self._q_level.set(self.sim.now, len(self._queue))
        self._u_level.set(self.sim.now, self._in_use)
        self._wait_tally.record(req.waited)
        req._complete(req)

    # -- introspection -------------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units free right now."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for capacity."""
        return len(self._queue)

    def utilization(self, t_end: float | None = None) -> float:
        """Time-average fraction of capacity in use."""
        return self._u_level.mean(t_end) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"queued={len(self._queue)}>")


class Store:
    """An unordered buffer of discrete items (producer/consumer channel).

    ``get()`` returns a waitable completing with an item; ``put()`` may
    block (waitable) when a ``capacity`` bound is set.  Used for mailbox /
    channel communication between agents (SimGrid-style).
    """

    def __init__(self, sim: Simulator, capacity: int | None = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Waitable] = deque()
        self._putters: deque[tuple[Waitable, Any]] = deque()
        self.monitor = Monitor(name)
        self._occupancy = self.monitor.level("occupancy", start_time=sim.now)

    def put(self, item: Any) -> Waitable:
        """Offer *item*; the returned waitable completes when accepted."""
        token = Waitable()
        self._putters.append((token, item))
        self._match()
        return token

    def get(self) -> Waitable:
        """Take one item; the returned waitable completes with the item."""
        token = Waitable()
        self._getters.append(token)
        self._match()
        return token

    def _match(self) -> None:
        moved = True
        while moved:
            moved = False
            # Accept pending puts while there is room.
            while self._putters and (self.capacity is None
                                     or len(self._items) < self.capacity):
                token, item = self._putters.popleft()
                self._items.append(item)
                token._complete(item)
                moved = True
            # Satisfy pending gets while items exist.
            while self._getters and self._items:
                token = self._getters.popleft()
                item = self._items.popleft()
                token._complete(item)
                moved = True
        self._occupancy.set(self.sim.now, len(self._items))

    @property
    def items(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Store {self.name!r} items={len(self._items)}>"


class Container:
    """A continuous-level reservoir (disk bytes, budget, fuel).

    ``take(x)`` blocks until *x* units are available; ``add(x)`` blocks while
    the fill would exceed capacity.  Waiters are served FIFO — a large take
    at the head blocks smaller ones behind it (no starvation).
    """

    def __init__(self, sim: Simulator, capacity: float, initial: float = 0.0,
                 name: str = "container") -> None:
        if capacity <= 0:
            raise ConfigurationError(f"container capacity must be > 0, got {capacity}")
        if not 0 <= initial <= capacity:
            raise ConfigurationError(
                f"initial level {initial} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._level = float(initial)
        self._takers: deque[tuple[Waitable, float]] = deque()
        self._adders: deque[tuple[Waitable, float]] = deque()
        self.monitor = Monitor(name)
        self._lvl_stat = self.monitor.level("level", initial=initial, start_time=sim.now)

    def take(self, amount: float) -> Waitable:
        """Withdraw *amount*; waitable completes when available."""
        if amount <= 0:
            raise ConfigurationError(f"take amount must be > 0, got {amount}")
        if amount > self.capacity:
            raise CapacityError(f"{self.name}: take {amount} > capacity {self.capacity}")
        token = Waitable()
        self._takers.append((token, float(amount)))
        self._match()
        return token

    def add(self, amount: float) -> Waitable:
        """Deposit *amount*; waitable completes when it fits."""
        if amount <= 0:
            raise ConfigurationError(f"add amount must be > 0, got {amount}")
        if amount > self.capacity:
            raise CapacityError(f"{self.name}: add {amount} > capacity {self.capacity}")
        token = Waitable()
        self._adders.append((token, float(amount)))
        self._match()
        return token

    def _match(self) -> None:
        moved = True
        while moved:
            moved = False
            if self._adders and self._level + self._adders[0][1] <= self.capacity:
                token, amount = self._adders.popleft()
                self._level += amount
                token._complete(self._level)
                moved = True
            if self._takers and self._level >= self._takers[0][1]:
                token, amount = self._takers.popleft()
                self._level -= amount
                token._complete(self._level)
                moved = True
        self._lvl_stat.set(self.sim.now, self._level)

    @property
    def level(self) -> float:
        """Current fill level."""
        return self._level

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Container {self.name!r} level={self._level:.6g}/{self.capacity:.6g}>"
