"""Sorted-list event queue — the O(n)-insert cautionary baseline.

Early simulators kept the future-event list as a time-ordered linked list;
insertion scans for position (O(n)) while delete-min pops the head (O(1)).
The paper's scalability discussion (Section 5) names this the structure that
makes "the time needed to run a complex simulation experiment ... quite
huge".  We keep it because (a) it is the natural straw-man for benchmark E2
and (b) for *tiny* event populations its constant factors win.

Implementation note: a Python ``list`` kept sorted in **reverse** order with
``bisect`` gives the same asymptotics as a linked list (O(n) insert via
element shifting, O(1) pop from the tail) with far better constants than an
actual pointer-chasing linked list in CPython.
"""

from __future__ import annotations

from bisect import insort_right
from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["LinearQueue"]


class _ReverseKeyed:
    """Wrapper ordering events in *descending* sort-key order for bisect."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    def __lt__(self, other: "_ReverseKeyed") -> bool:
        return other.event.sort_key < self.event.sort_key


class LinearQueue(EventQueue):
    """Time-ordered list: O(n) insert, O(1) delete-min."""

    def __init__(self) -> None:
        super().__init__()
        self._items: list[_ReverseKeyed] = []

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        insort_right(self._items, _ReverseKeyed(event))

    def _pop_any(self) -> Optional[Event]:
        if not self._items:
            return None
        return self._items.pop().event

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        items = self._items
        while items:
            ev = items[-1].event
            if ev._cancelled:
                items.pop()
                self._dead -= 1
                continue
            if ev.time > horizon:
                return None
            items.pop()
            ev._on_cancel = None
            return ev
        return None

    def peek(self) -> Optional[Event]:
        # Purge cancelled tail entries, then read the minimum in place.
        items = self._items
        while items and items[-1].event._cancelled:
            items.pop()
            self._dead -= 1
        return items[-1].event if items else None

    def __len__(self) -> int:
        return len(self._items)

    def _compact(self) -> None:
        # Filtering preserves the descending sort order.
        self._items = [it for it in self._items if not it.event._cancelled]

    def _iter_events(self) -> Iterator[Event]:
        for item in self._items:
            yield item.event
