"""Event-list structures for the DES kernel.

See :mod:`repro.core.queues.base` for the interface and the rationale
(the taxonomy's *engine optimization* axis).  :func:`make_queue` builds a
structure by name, which is how engines and benchmarks select one.
"""

from __future__ import annotations

from typing import Callable

from .adaptive import AdaptiveQueue
from .base import EventQueue
from .calendar import CalendarQueue
from .heap import HeapQueue
from .ladder import LadderQueue
from .linear import LinearQueue
from .splay import SplayQueue

__all__ = [
    "EventQueue",
    "LinearQueue",
    "HeapQueue",
    "SplayQueue",
    "CalendarQueue",
    "LadderQueue",
    "AdaptiveQueue",
    "QUEUE_FACTORIES",
    "make_queue",
]

#: Registry of constructible event-list structures, keyed by short name.
QUEUE_FACTORIES: dict[str, Callable[[], EventQueue]] = {
    "linear": LinearQueue,
    "heap": HeapQueue,
    "splay": SplayQueue,
    "calendar": CalendarQueue,
    "ladder": LadderQueue,
    "adaptive": AdaptiveQueue,
}


def make_queue(kind: str = "heap") -> EventQueue:
    """Instantiate an event-list structure by registry name.

    Raises
    ------
    KeyError
        If *kind* is not one of :data:`QUEUE_FACTORIES`.
    """
    try:
        return QUEUE_FACTORIES[kind]()
    except KeyError:
        raise KeyError(
            f"unknown event queue kind {kind!r}; choose from {sorted(QUEUE_FACTORIES)}"
        ) from None
