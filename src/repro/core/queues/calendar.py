"""Calendar queue — the amortized O(1) event list (Brown, CACM 1988).

This is the structure the paper means by "a system using an O(1) structure
for the event list will behave better than another one using an O(log n)
queuing structure".  Events are hashed into an array of *buckets* by
timestamp, like appointments onto the days of a wall calendar:

* bucket index = ``floor(time / width) mod nbuckets``,
* a full sweep of the array spans one *year* (``nbuckets * width``),
* delete-min resumes scanning from the bucket of the last minimum and only
  accepts events belonging to the current year, so each sweep advances the
  calendar exactly one year.

With bucket width matched to the mean inter-event gap, each bucket holds
O(1) events and both operations are amortized O(1).  The structure *adapts*:
when the population doubles/halves past thresholds it resizes the bucket
array and re-estimates the width by sampling the queue — Brown's original
heuristic.  Resizing drops cancelled records entirely, so dead events can
never skew the width estimate.  Heavily *skewed* event-time distributions
defeat the width estimate and pile events into few buckets, which is exactly
the "no single structure performs best" caveat benchmark E2 demonstrates.

Hot path: :meth:`CalendarQueue.pop_if_le` performs delete-min, horizon
check, and cancelled-head purging in **one** bucket sweep — under the old
``peek()`` + ``pop()`` engine protocol every firing paid for two sweeps.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["CalendarQueue"]

_MIN_BUCKETS = 2


class CalendarQueue(EventQueue):
    """Adaptive multi-list calendar queue with Brown's resize heuristic.

    Parameters
    ----------
    initial_buckets:
        Starting bucket-array size (rounded up to a power of two).
    initial_width:
        Starting bucket width in simulation-time units.
    """

    def __init__(self, initial_buckets: int = 2, initial_width: float = 1.0) -> None:
        super().__init__()
        n = _MIN_BUCKETS
        while n < initial_buckets:
            n <<= 1
        self._init_width = float(initial_width)
        self._size = 0
        self._setup(n, float(initial_width), 0.0)

    def _setup(self, nbuckets: int, width: float, start: float) -> None:
        """(Re)build the bucket array; caller re-inserts any prior events."""
        self._nbuckets = nbuckets
        self._width = max(width, 1e-12)
        self._buckets: list[list[Event]] = [[] for _ in range(nbuckets)]
        # scan state: last-popped minimum defines where the next sweep begins
        self._last_prio = start
        self._cur_bucket = int(start / self._width) % nbuckets
        # upper time edge of the current bucket within the current year
        self._bucket_top = (int(start / self._width) + 1) * self._width
        self._resize_up = 2 * nbuckets
        self._resize_down = nbuckets // 2 - 2

    # -- core operations -------------------------------------------------------

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        t = event.time
        if t < self._last_prio:
            # Insert behind the scan position (legal for a general-purpose
            # priority queue even though engines never schedule in the past):
            # rewind the calendar so the sweep re-covers the event's bucket.
            j = int(t / self._width)
            self._cur_bucket = j % self._nbuckets
            self._bucket_top = (j + 1) * self._width
            self._last_prio = t
        i = int(t / self._width) % self._nbuckets
        bucket = self._buckets[i]
        # Buckets are kept sorted (they stay tiny when width is well-chosen),
        # so delete-min inspects only bucket heads.
        lo, hi = 0, len(bucket)
        key = event.sort_key
        while lo < hi:
            mid = (lo + hi) // 2
            if bucket[mid].sort_key < key:
                lo = mid + 1
            else:
                hi = mid
        bucket.insert(lo, event)
        self._size += 1
        if self._size > self._resize_up:
            self._resize(self._nbuckets * 2)

    def _commit_pop(self, ev: Event, i: int, top: float) -> Event:
        """Record scan state after removing *ev* from bucket *i*."""
        self._size -= 1
        self._last_prio = ev.time
        self._cur_bucket = i
        self._bucket_top = top
        ev._on_cancel = None
        if self._size < self._resize_down and self._nbuckets > _MIN_BUCKETS:
            self._resize(self._nbuckets // 2)
        return ev

    def _pop_min_direct(self, horizon: float) -> Optional[Event]:
        """Global head scan for when a whole year sweep found nothing."""
        best_bucket: Optional[list[Event]] = None
        for bucket in self._buckets:
            while bucket and bucket[0]._cancelled:
                bucket.pop(0)
                self._size -= 1
                self._dead -= 1
            if bucket and (best_bucket is None
                           or bucket[0].sort_key < best_bucket[0].sort_key):
                best_bucket = bucket
        if best_bucket is None:  # every record was a purged ghost
            return None
        ev = best_bucket[0]
        if ev.time > horizon:
            return None
        best_bucket.pop(0)
        # Move the scan to the popped event's bucket.  (Popping directly —
        # rather than re-entering the sweep — guards against float-precision
        # collapse when width << event times.)
        j = int(ev.time / self._width)
        return self._commit_pop(ev, j % self._nbuckets,
                                max((j + 1) * self._width, ev.time))

    def _pop_any(self) -> Optional[Event]:
        if self._size == 0:
            return None
        i = self._cur_bucket
        top = self._bucket_top
        n = self._nbuckets
        # Sweep at most one full year looking at bucket heads.
        for _ in range(n):
            bucket = self._buckets[i]
            if bucket and bucket[0].time < top:
                return self._commit_pop(bucket.pop(0), i, top)
            i = (i + 1) % n
            top += self._width
        # No event in the coming year: direct search for the global minimum.
        return self._pop_min_direct(float("inf"))

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        """Fused delete-min: one sweep covers purge + horizon check + pop."""
        if self._size == 0:
            return None
        i = self._cur_bucket
        top = self._bucket_top
        n = self._nbuckets
        buckets = self._buckets
        for _ in range(n):
            bucket = buckets[i]
            while bucket and bucket[0]._cancelled:
                bucket.pop(0)
                self._size -= 1
                self._dead -= 1
            if bucket:
                ev = bucket[0]
                if ev.time < top:
                    if ev.time > horizon:
                        return None
                    # _commit_pop, inlined: this branch is the engine's
                    # per-event hot path and saves the call frame.
                    del bucket[0]
                    size = self._size - 1
                    self._size = size
                    self._last_prio = ev.time
                    self._cur_bucket = i
                    self._bucket_top = top
                    ev._on_cancel = None
                    if size < self._resize_down and n > _MIN_BUCKETS:
                        self._resize(n // 2)
                    return ev
            elif self._size == 0:  # purging emptied the queue mid-sweep
                return None
            i = (i + 1) % n
            top += self._width
        return self._pop_min_direct(horizon)

    def peek(self) -> Optional[Event]:
        # Mirror the pop sweep (O(1) amortized) instead of scanning every
        # bucket; a naive global scan would dominate small simulations.
        # Scan state is NOT advanced — only a successful pop may move it.
        if self._size == 0:
            return None
        before = self._size
        ev = self._peek_scan()
        if (self._size < before and self._size < self._resize_down
                and self._nbuckets > _MIN_BUCKETS):
            # The cancelled-head purge shrank the population below the
            # resize-down threshold: apply the same adaptation a pop would.
            self._resize(self._nbuckets // 2)
            return self._peek_scan()
        return ev

    def _peek_scan(self) -> Optional[Event]:
        i = self._cur_bucket
        top = self._bucket_top
        n = self._nbuckets
        for _ in range(n):
            bucket = self._buckets[i]
            while bucket and bucket[0]._cancelled:
                bucket.pop(0)
                self._size -= 1
                self._dead -= 1
            if bucket and bucket[0].time < top:
                return bucket[0]
            i = (i + 1) % n
            top += self._width
        # Nothing in the coming year: fall back to a global head scan.
        best: Optional[Event] = None
        for bucket in self._buckets:
            while bucket and bucket[0]._cancelled:
                bucket.pop(0)
                self._size -= 1
                self._dead -= 1
            if bucket and (best is None or bucket[0].sort_key < best.sort_key):
                best = bucket[0]
        return best

    def __len__(self) -> int:
        return self._size

    def _iter_events(self) -> Iterator[Event]:
        for bucket in self._buckets:
            yield from bucket

    # -- adaptation --------------------------------------------------------------

    def _compact(self) -> None:
        # A same-size resize already filters cancelled records and refreshes
        # the width estimate from the live population.
        self._resize(self._nbuckets)

    def _resize(self, new_nbuckets: int) -> None:
        new_nbuckets = max(new_nbuckets, _MIN_BUCKETS)
        # Cancelled records are dropped here, never re-inserted: they would
        # survive every resize otherwise, skewing Brown's width estimate.
        events = [ev for bucket in self._buckets for ev in bucket
                  if not ev._cancelled]
        self._dead = 0
        width = self._estimate_width(events)
        start = self._last_prio
        self._size = 0
        self._setup(new_nbuckets, width, start)
        for ev in events:
            self.push(ev)

    def _estimate_width(self, events: list[Event]) -> float:
        """Brown's width heuristic: ~3x the mean gap of a sample near the min."""
        live = sorted(ev.time for ev in events)
        if len(live) < 2:
            return self._init_width
        sample = live[: min(len(live), 25)]
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._init_width
        mean_gap = sum(gaps) / len(gaps)
        width = 3.0 * mean_gap if mean_gap > 0 else self._init_width
        # Precision guard: keep bucket indices (t / width) well inside the
        # 53-bit float mantissa, else (j+1)*width can round below t and the
        # sweep would never terminate.
        t_max = abs(live[-1])
        if t_max > 0:
            width = max(width, t_max / 2.0**40)
        return width

    # -- diagnostics ---------------------------------------------------------------

    @property
    def nbuckets(self) -> int:
        """Current bucket-array size (exposed for tests and benchmarks)."""
        return self._nbuckets

    @property
    def width(self) -> float:
        """Current bucket width (exposed for tests and benchmarks)."""
        return self._width

    def max_bucket_occupancy(self) -> int:
        """Largest single-bucket population — skew diagnostic for E2."""
        return max((len(b) for b in self._buckets), default=0)
