"""Self-tuning event list: samples its own workload and migrates structures.

The source paper observes that no single queuing structure performs best —
"there is not a single unanimity accepted queuing structure"; the winner
depends on the event-time distribution and the operation mix, which a
simulation author rarely knows in advance (and which can change *within* a
run: a schedule-heavy warm-up followed by a steady hold pattern followed by
a drain).  :class:`AdaptiveQueue` removes the choice from the user: it
delegates to one of the bundled structures and keeps lightweight statistics
over a sliding window of operations — push/pop ratio, timestamp skew,
cancellation rate, dead-record fraction, live size — migrating its contents
to a different backend when the sampled profile crosses calibrated
thresholds.

Policy (evaluated once per *window* operations, with hysteresis so a
profile sitting on a boundary never thrashes):

* live size ≥ ``ladder_size`` → **ladder**: bucket structures dominate at
  scale and the ladder re-buckets skewed bands instead of degrading.
* mid-band size with low right-tail skew, a balanced push/pop mix, and few
  cancellations → **calendar**: the stationary hold pattern Brown's
  calendar queue was designed around.
* otherwise → **heap**: the robust default; lowest constants at small
  sizes and under erratic mixes.

Migration re-pushes only the live events (a free compaction) and leaves
every popped ordering byte-identical to the heapq reference — enforced by
the differential fuzzer with a small-window variant so migrations happen
mid-sequence.  Counters (``migrations``, ``migrated_events``, the last
sampled ``profile``) are public; when an :class:`~repro.obs.Observation`
is attached to the owning simulator it wires :attr:`on_migrate` so the
telemetry snapshot and the Chrome trace record each switch.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..events import Event
from .base import EventQueue
from .calendar import CalendarQueue
from .heap import HeapQueue
from .ladder import LadderQueue

__all__ = ["AdaptiveQueue"]


class AdaptiveQueue(EventQueue):
    """Event queue that re-selects its backing structure at runtime.

    Parameters (all thresholds overridable, mainly so tests and the fuzzer
    can force migrations with tiny workloads):

    window:
        Operations (pushes + successful pops) between profile evaluations.
    ladder_size:
        Live size at or above which the ladder backend is selected; the
        queue leaves the ladder only below half of this (hysteresis).
    calendar_size:
        Minimum live size for the calendar backend to be considered.
    calendar_skew:
        Maximum right-tail skew — ``(max - mean) / (mean - min)`` over the
        window's pushed timestamps — for the calendar's uniform-width
        buckets to be trusted.
    balanced:
        ``(lo, hi)`` band of the push share (pushes / operations) treated
        as a steady hold pattern.
    calendar_cancel:
        Maximum per-window cancellation rate for the calendar (cancelled
        ghosts sit in its buckets until a sweep passes them).
    """

    BACKENDS: dict[str, Callable[[], EventQueue]] = {
        "heap": HeapQueue,
        "calendar": CalendarQueue,
        "ladder": LadderQueue,
    }

    def __init__(self, window: int = 2048, ladder_size: int = 16384,
                 calendar_size: int = 4096, calendar_skew: float = 3.0,
                 balanced: tuple[float, float] = (0.35, 0.65),
                 calendar_cancel: float = 0.05) -> None:
        super().__init__()
        self.window = max(2, int(window))
        self.ladder_size = ladder_size
        self.calendar_size = calendar_size
        self.calendar_skew = calendar_skew
        self.balanced = balanced
        self.calendar_cancel = calendar_cancel
        self._impl: EventQueue = HeapQueue()
        self.backend_kind = "heap"
        #: total structure switches / live events moved across them
        self.migrations = 0
        self.migrated_events = 0
        #: the most recent window's sampled profile (diagnostics)
        self.profile: dict[str, float] = {}
        #: ``(src_kind, dst_kind, moved) -> None``; wired to the obs layer
        #: by :meth:`repro.obs.Observation.attach`, else stays None.
        self.on_migrate: Optional[Callable[[str, str, int], None]] = None
        # sliding-window accumulators
        self._ops_left = self.window
        self._w_pushes = 0
        self._w_pops = 0
        self._w_cancels = 0
        self._w_tsum = 0.0
        self._w_tmin = float("inf")
        self._w_tmax = float("-inf")

    @property
    def backend(self) -> EventQueue:
        """The structure currently holding the events (for introspection)."""
        return self._impl

    # -- interface (all delegate to the current backend) ----------------------
    #
    # These are stable bound methods: the engine hot loop caches
    # ``queue.pop_if_le`` once per run(), so the indirection through
    # ``self._impl`` must happen *inside* the call — rebinding the wrapper's
    # methods to the backend's would leave the engine popping a structure
    # that a mid-run migration has already abandoned.

    def push(self, event: Event) -> None:
        self._impl.push(event)
        if event._on_cancel is not None:
            # Claim the hook back from the backend so cancellations are
            # counted in the window profile (then forwarded).
            event._on_cancel = self._cancel_cb
        t = event.time
        self._w_pushes += 1
        self._w_tsum += t
        if t < self._w_tmin:
            self._w_tmin = t
        if t > self._w_tmax:
            self._w_tmax = t
        self._ops_left -= 1
        if self._ops_left <= 0:
            self._evaluate()

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        ev = self._impl.pop_if_le(horizon)
        if ev is not None:
            self._w_pops += 1
            self._ops_left -= 1
            if self._ops_left <= 0:
                self._evaluate()
        return ev

    def pop(self) -> Optional[Event]:
        ev = self._impl.pop()
        if ev is not None:
            self._w_pops += 1
            self._ops_left -= 1
            if self._ops_left <= 0:
                self._evaluate()
        return ev

    def _pop_any(self) -> Optional[Event]:
        return self._impl._pop_any()

    def peek(self) -> Optional[Event]:
        return self._impl.peek()

    def __len__(self) -> int:
        return len(self._impl)

    def live_len(self) -> int:
        return self._impl.live_len()

    def __bool__(self) -> bool:
        return bool(self._impl)

    @property
    def dead_len(self) -> int:
        return self._impl.dead_len

    def compact(self) -> None:
        self._impl.compact()

    def _compact(self) -> None:  # pragma: no cover - compact() bypasses this
        self._impl._compact()

    def _iter_events(self) -> Iterator[Event]:
        return self._impl._iter_events()

    def _note_cancelled(self) -> None:
        # Installed as the pushed events' cancel hook (via ``_cancel_cb``):
        # count it for the window profile, then forward so the backend's
        # exact dead counter and compaction threshold still work.
        self._w_cancels += 1
        self._impl._note_cancelled()

    # -- sampling & migration --------------------------------------------------

    def _evaluate(self) -> None:
        """Close the window: sample the profile, migrate if it crossed."""
        self._ops_left = self.window
        pushes, pops, cancels = self._w_pushes, self._w_pops, self._w_cancels
        ops = pushes + pops
        size = self._impl.live_len()
        push_share = pushes / ops if ops else 0.5
        if pushes >= 2 and self._w_tmax > self._w_tmin:
            mean = self._w_tsum / pushes
            skew = (self._w_tmax - mean) / max(mean - self._w_tmin, 1e-12)
        else:
            skew = 1.0  # too few samples to distrust any structure
        raw = len(self._impl)
        self.profile = {
            "size": float(size),
            "push_share": push_share,
            "skew": skew,
            "cancel_rate": cancels / ops if ops else 0.0,
            "dead_fraction": self._impl.dead_len / raw if raw else 0.0,
        }
        self._w_pushes = self._w_pops = self._w_cancels = 0
        self._w_tsum = 0.0
        self._w_tmin = float("inf")
        self._w_tmax = float("-inf")
        target = self._choose()
        if target != self.backend_kind:
            self._migrate(target)

    def _choose(self) -> str:
        """Map the sampled profile to a backend kind (with hysteresis)."""
        p = self.profile
        size = p["size"]
        cur = self.backend_kind
        if size >= self.ladder_size:
            return "ladder"
        if cur == "ladder" and size * 2 >= self.ladder_size:
            return "ladder"  # hold until well below the boundary
        lo, hi = self.balanced
        calendar_fit = (p["skew"] <= self.calendar_skew
                        and lo <= p["push_share"] <= hi
                        and p["cancel_rate"] <= self.calendar_cancel)
        if size >= self.calendar_size and calendar_fit:
            return "calendar"
        if cur == "calendar" and size * 2 >= self.calendar_size and calendar_fit:
            return "calendar"
        return "heap"

    def _migrate(self, target: str) -> None:
        """Move live contents into a fresh *target* structure.

        Only live events move (cancelled records are dropped — their
        ``_on_cancel`` hooks already fired, so nothing references the old
        backend afterwards).  The set of live events and their total order
        are untouched, so popped sequences stay byte-identical across the
        switch.
        """
        old = self._impl
        src = self.backend_kind
        new = self.BACKENDS[target]()
        cb = self._cancel_cb
        moved = 0
        for ev in old._iter_events():
            if not ev._cancelled:
                new.push(ev)
                ev._on_cancel = cb  # claim the hook back from the backend
                moved += 1
        self._impl = new
        self.backend_kind = target
        self.migrations += 1
        self.migrated_events += moved
        hook = self.on_migrate
        if hook is not None:
            hook(src, target, moved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AdaptiveQueue backend={self.backend_kind} "
                f"len={len(self)} migrations={self.migrations}>")
