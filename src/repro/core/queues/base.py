"""Pluggable event-list structures.

The ICPP'09 paper singles out the *queuing structure adopted in the design of
the simulation engine for managing the event lists* as a first-order
performance concern: "A system using an O(1) structure for the event list
will behave better than another one using an O(log n) queuing structure",
while also noting that "there is not a single unanimity accepted queuing
structure that performs best" — behaviour depends on the event-time
distribution.  This subpackage makes that claim testable: five structures
with different asymptotics share one interface, and every engine accepts any
of them.

All structures implement *lazy deletion*: :meth:`EventQueue.pop` silently
discards events whose :attr:`~repro.core.events.Event.cancelled` flag is set,
so cancellation is O(1) regardless of structure.

Implementations
---------------
============================  ==========================  =======================
class                         insert / delete-min         notes
============================  ==========================  =======================
:class:`~.linear.LinearQueue`    O(n) / O(1)              cautionary baseline
:class:`~.heap.HeapQueue`        O(log n) / O(log n)      robust default
:class:`~.splay.SplayQueue`      amortized O(log n)       exploits access locality
:class:`~.calendar.CalendarQueue`  amortized O(1)         the paper's "O(1)"
:class:`~.ladder.LadderQueue`    amortized O(1)           skew-resistant
============================  ==========================  =======================
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from ..events import Event

__all__ = ["EventQueue"]


class EventQueue(abc.ABC):
    """Abstract priority queue over :class:`~repro.core.events.Event`.

    Contract (enforced by the shared conformance suite in
    ``tests/test_queues.py``):

    * :meth:`pop` returns live events in non-decreasing
      :attr:`~repro.core.events.Event.sort_key` order, exactly once each.
    * Cancelled events are never returned and do not count toward
      :meth:`live_len`.
    * ``len(q)`` may include cancelled-but-unpurged events (it is the raw
      slot count); :meth:`live_len` is exact but may be O(n).
    """

    @abc.abstractmethod
    def push(self, event: Event) -> None:
        """Insert *event*.  The queue never mutates the event."""

    @abc.abstractmethod
    def _pop_any(self) -> Optional[Event]:
        """Remove and return the minimum event, live or cancelled.

        Returns ``None`` when empty.  Subclasses implement only this;
        the lazy-deletion loop lives in :meth:`pop`.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Raw number of stored records (may include cancelled events)."""

    # -- shared behaviour ----------------------------------------------------

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest *live* event, or ``None`` if empty."""
        while True:
            ev = self._pop_any()
            if ev is None or not ev.cancelled:
                return ev

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest live event, or ``None``.

        Default implementation pops then re-pushes; structures with a cheap
        find-min override it.
        """
        ev = self.pop()
        if ev is not None:
            self.push(ev)
        return ev

    def __bool__(self) -> bool:
        return self.peek() is not None

    def live_len(self) -> int:
        """Exact count of live (non-cancelled) events.  May be O(n)."""
        return sum(1 for ev in self._iter_events() if not ev.cancelled)

    def _iter_events(self) -> Iterator[Event]:
        """Iterate stored events in arbitrary order (for diagnostics).

        Subclasses should override; default drains and restores the queue,
        which is correct but costly.
        """
        drained = []
        while True:
            ev = self._pop_any()
            if ev is None:
                break
            drained.append(ev)
        for ev in drained:
            self.push(ev)
        yield from drained

    def drain(self) -> list[Event]:
        """Remove and return all live events in order (used by trace dump)."""
        out = []
        while True:
            ev = self.pop()
            if ev is None:
                return out
            out.append(ev)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} len={len(self)}>"
