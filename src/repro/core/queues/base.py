"""Pluggable event-list structures.

The ICPP'09 paper singles out the *queuing structure adopted in the design of
the simulation engine for managing the event lists* as a first-order
performance concern: "A system using an O(1) structure for the event list
will behave better than another one using an O(log n) queuing structure",
while also noting that "there is not a single unanimity accepted queuing
structure that performs best" — behaviour depends on the event-time
distribution.  This subpackage makes that claim testable: five structures
with different asymptotics share one interface, and every engine accepts any
of them.

Dispatch protocol
-----------------
Engines advance via :meth:`EventQueue.pop_if_le`, the *single-call* hot-path
operation: "remove and return the earliest live event at or before the
horizon, else leave the queue untouched".  One call per firing replaces the
historical ``peek()`` + ``pop()`` pair, which forced every structure to
locate its minimum twice per event (for :class:`~.calendar.CalendarQueue`
that meant two bucket sweeps per firing).  ``peek()`` remains available and
is guaranteed *non-mutating* with respect to live events (it may purge
cancelled records it walks over).

Cancellation policy
-------------------
All structures implement *lazy deletion with eager purging*:

* :meth:`EventQueue.pop` / :meth:`pop_if_le` silently discard events whose
  :attr:`~repro.core.events.Event.cancelled` flag is set, so cancellation is
  O(1) regardless of structure;
* at push time the queue registers itself on the event's ``_on_cancel``
  hook, maintaining an exact per-queue dead-record counter (``dead_len``);
* once at least :attr:`EventQueue.compact_min` records are dead *and* they
  make up at least half of the stored records, :meth:`EventQueue.compact`
  structurally removes them — so cancellation-heavy models stop paying for
  ghost events in every subsequent sweep, resize, and comparison.

The exact dead counter also makes ``live_len()`` and ``__bool__`` O(1).

Implementations
---------------
============================  ==========================  =======================
class                         insert / delete-min         notes
============================  ==========================  =======================
:class:`~.linear.LinearQueue`    O(n) / O(1)              cautionary baseline
:class:`~.heap.HeapQueue`        O(log n) / O(log n)      robust default
:class:`~.splay.SplayQueue`      amortized O(log n)       exploits access locality
:class:`~.calendar.CalendarQueue`  amortized O(1)         the paper's "O(1)"
:class:`~.ladder.LadderQueue`    amortized O(1)           skew-resistant
============================  ==========================  =======================
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

from ..events import Event

__all__ = ["EventQueue"]


class EventQueue(abc.ABC):
    """Abstract priority queue over :class:`~repro.core.events.Event`.

    Contract (enforced by the shared conformance suite in
    ``tests/test_queues.py``):

    * :meth:`pop` returns live events in non-decreasing
      :attr:`~repro.core.events.Event.sort_key` order, exactly once each.
    * :meth:`pop_if_le` behaves like :meth:`pop` but returns ``None`` —
      leaving the head in place — when the earliest live event lies beyond
      the horizon.
    * :meth:`peek` never reorders or removes live events (purging cancelled
      records is allowed).
    * Cancelled events are never returned and do not count toward
      :meth:`live_len`.
    * ``len(q)`` may include cancelled-but-unpurged events (it is the raw
      slot count); :meth:`live_len` is exact and O(1).
    """

    #: Dead records required before :meth:`compact` may trigger; compaction
    #: also requires the dead to be at least half of all stored records, so
    #: the amortized cost per cancellation stays O(1).
    compact_min = 64

    def __init__(self) -> None:
        self._dead = 0
        # Bound once: pushed events get this as their cancel hook, so a
        # cancellation costs one attribute read + one call, no dict lookups.
        self._cancel_cb = self._note_cancelled

    # -- structure-specific primitives ---------------------------------------

    @abc.abstractmethod
    def push(self, event: Event) -> None:
        """Insert *event*.

        Implementations must route the event through :meth:`_register` (or
        replicate its two-line body) so the dead-record counter stays exact.
        """

    @abc.abstractmethod
    def _pop_any(self) -> Optional[Event]:
        """Remove and return the minimum event, live or cancelled.

        Returns ``None`` when empty.  The lazy-deletion loop lives in
        :meth:`pop`.
        """

    @abc.abstractmethod
    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest live event, or ``None``.

        Must be non-mutating with respect to live events; purging cancelled
        records encountered on the way is allowed (and keeps the dead
        counter exact via :meth:`_note_purged`).
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Raw number of stored records (may include cancelled events)."""

    # -- dead-record accounting ----------------------------------------------

    def _register(self, event: Event) -> None:
        """Hook *event* into this queue's cancellation accounting."""
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb

    def _note_cancelled(self) -> None:
        """Cancel hook: count the dead record, compacting past threshold."""
        self._dead += 1
        if self._dead >= self.compact_min and self._dead * 2 >= len(self):
            self.compact()

    def _note_purged(self, n: int = 1) -> None:
        """Record that *n* cancelled records left the structure."""
        self._dead -= n

    @property
    def dead_len(self) -> int:
        """Exact count of cancelled records still occupying slots."""
        return self._dead

    def compact(self) -> None:
        """Structurally remove every cancelled record.  O(n)."""
        self._compact()
        self._dead = 0

    def _compact(self) -> None:
        """Default compaction: drain raw records, re-push the live ones.

        Structures override with in-place filters; this fallback is correct
        for any implementation of the primitives.
        """
        live = []
        while True:
            ev = self._pop_any()
            if ev is None:
                break
            if not ev._cancelled:
                live.append(ev)
        for ev in live:
            self.push(ev)

    # -- shared behaviour ----------------------------------------------------

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest *live* event, or ``None`` if empty."""
        while True:
            ev = self._pop_any()
            if ev is None:
                return None
            if not ev._cancelled:
                ev._on_cancel = None
                return ev
            self._dead -= 1

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        """Remove and return the earliest live event with ``time <= horizon``.

        Returns ``None`` — leaving the queue untouched — when the queue is
        empty or its earliest live event lies beyond *horizon*.  This is the
        engine hot-path operation: one call per firing instead of the
        ``peek()`` + ``pop()`` pair.  Every bundled structure overrides it
        with a fused implementation; this default composes the primitives.
        """
        ev = self.peek()
        if ev is None or ev.time > horizon:
            return None
        return self.pop()

    def __bool__(self) -> bool:
        # O(1): raw slots minus exact dead count.
        return len(self) > self._dead

    def live_len(self) -> int:
        """Exact count of live (non-cancelled) events.  O(1)."""
        return len(self) - self._dead

    def _iter_events(self) -> Iterator[Event]:
        """Iterate stored events in arbitrary order (for diagnostics).

        Subclasses should override; default drains and restores the queue,
        which is correct but costly.
        """
        drained = []
        while True:
            ev = self._pop_any()
            if ev is None:
                break
            if ev._cancelled:
                # leaves storage here; the push below re-counts it
                self._dead -= 1
            drained.append(ev)
        for ev in drained:
            self.push(ev)
        yield from drained

    def drain(self) -> list[Event]:
        """Remove and return all live events in order (used by trace dump)."""
        out = []
        while True:
            ev = self.pop()
            if ev is None:
                return out
            out.append(ev)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} len={len(self)} dead={self._dead}>"
