"""Ladder queue — amortized O(1) event list resistant to skew (Tang et al. 2005).

The ladder queue was proposed as the successor to the calendar queue for
large-scale network simulation: it keeps calendar-like O(1) amortized cost
but, instead of one global bucket width, *recursively* re-buckets any bucket
that grows too large into a finer rung.  That makes it robust against the
skewed timestamp distributions that break a calendar queue's width estimate
— the property benchmark E2 measures.

Structure (three tiers):

``Top``
    Unsorted spill list for events beyond the ladder's horizon.  Cheap O(1)
    append; converted into a fresh rung when the ladder runs dry.
``Ladder``
    A stack of *rungs*; each rung is an array of buckets covering a time
    interval.  Rung *k+1* refines one oversized bucket of rung *k*.
``Bottom``
    A small sorted list holding the imminent events; delete-min pops from
    here.  When it empties, the next non-empty bucket of the lowest rung is
    sorted into it (or re-bucketed into a new rung if it exceeds the
    threshold).
"""

from __future__ import annotations

from bisect import insort_right
from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["LadderQueue"]

#: Bucket population above which a bucket is refined into a new rung rather
#: than sorted directly into Bottom (the paper's THRES).
_THRESHOLD = 50


class _ReverseKeyed:
    """Descending-order wrapper so Bottom pops its minimum from the tail."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    def __lt__(self, other: "_ReverseKeyed") -> bool:
        return other.event.sort_key < self.event.sort_key


class _Rung:
    __slots__ = ("start", "width", "buckets", "cur")

    def __init__(self, start: float, width: float, nbuckets: int) -> None:
        self.start = start
        self.width = max(width, 1e-12)
        self.buckets: list[list[Event]] = [[] for _ in range(nbuckets)]
        self.cur = 0  # index of the first possibly-non-empty bucket

    @property
    def end(self) -> float:
        """Exclusive upper time bound of the rung."""
        return self.start + self.width * len(self.buckets)

    def insert(self, event: Event) -> bool:
        """Insert if the event belongs at or after the current bucket."""
        i = int((event.time - self.start) / self.width)
        if i < self.cur or i >= len(self.buckets):
            return False
        self.buckets[i].append(event)
        return True

    def next_bucket(self) -> Optional[list[Event]]:
        """Detach and return the next non-empty bucket, advancing ``cur``."""
        while self.cur < len(self.buckets):
            bucket = self.buckets[self.cur]
            self.cur += 1
            if bucket:
                self.buckets[self.cur - 1] = []
                return bucket
        return None

    def bucket_bounds(self) -> tuple[float, float]:
        """Time range of the bucket just returned by :meth:`next_bucket`."""
        i = self.cur - 1
        return (self.start + i * self.width, self.start + (i + 1) * self.width)

    def __len__(self) -> int:
        return sum(len(b) for b in self.buckets[self.cur:])


class LadderQueue(EventQueue):
    """Three-tier (Top / Ladder / Bottom) adaptive event list."""

    def __init__(self) -> None:
        super().__init__()
        self._top: list[Event] = []
        self._top_min = float("inf")
        self._top_max = float("-inf")
        self._top_start = float("-inf")  # events beyond this go to Top
        self._rungs: list[_Rung] = []
        self._bottom: list[_ReverseKeyed] = []
        self._size = 0

    # -- interface ------------------------------------------------------------

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        t = event.time
        self._size += 1
        # Strictly greater: an event at exactly the boundary timestamp must
        # join the ladder/Bottom tiers, where same-time events sort by the
        # full (time, priority, seq) key — routing it to Top would let a
        # lower-priority twin already in the ladder pop first.
        if t > self._top_start:
            self._top.append(event)
            if t < self._top_min:
                self._top_min = t
            if t > self._top_max:
                self._top_max = t
            return
        for rung in self._rungs:
            if t >= rung.start and rung.insert(event):
                return
        insort_right(self._bottom, _ReverseKeyed(event))

    def _pop_any(self) -> Optional[Event]:
        if self._size == 0:
            return None
        if not self._bottom:
            self._refill_bottom()
        if not self._bottom:
            return None  # pragma: no cover - size bookkeeping guards this
        self._size -= 1
        return self._bottom.pop().event

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        bottom = self._bottom
        while True:
            if not bottom and self._size:
                self._refill_bottom()
            while bottom and bottom[-1].event._cancelled:
                bottom.pop()
                self._size -= 1
                self._dead -= 1
            if bottom:
                ev = bottom[-1].event
                if ev.time > horizon:
                    return None
                bottom.pop()
                self._size -= 1
                ev._on_cancel = None
                return ev
            if self._size == 0:
                return None

    def peek(self) -> Optional[Event]:
        while True:
            if not self._bottom and self._size:
                self._refill_bottom()
            while self._bottom and self._bottom[-1].event._cancelled:
                self._bottom.pop()
                self._size -= 1
                self._dead -= 1
            if self._bottom:
                return self._bottom[-1].event
            if self._size == 0:
                return None

    def __len__(self) -> int:
        return self._size

    def _compact(self) -> None:
        self._top = [ev for ev in self._top if not ev._cancelled]
        if self._top:
            self._top_min = min(ev.time for ev in self._top)
            self._top_max = max(ev.time for ev in self._top)
        else:
            self._top_min = float("inf")
            self._top_max = float("-inf")
        for rung in self._rungs:
            for i, bucket in enumerate(rung.buckets):
                if bucket:
                    rung.buckets[i] = [ev for ev in bucket
                                       if not ev._cancelled]
        while self._rungs and len(self._rungs[-1]) == 0:
            self._rungs.pop()
        self._bottom = [it for it in self._bottom
                        if not it.event._cancelled]
        self._size = (len(self._top) + len(self._bottom)
                      + sum(len(r) for r in self._rungs))

    def _iter_events(self) -> Iterator[Event]:
        yield from self._top
        for rung in self._rungs:
            for bucket in rung.buckets:
                yield from bucket
        for item in self._bottom:
            yield item.event

    # -- tier management --------------------------------------------------------

    def _refill_bottom(self) -> None:
        """Move the earliest pending bucket (or Top) into sorted Bottom."""
        while not self._bottom:
            # Drop exhausted rungs so their horizon reopens for insertion.
            while self._rungs and len(self._rungs[-1]) == 0:
                self._rungs.pop()
            if self._rungs:
                rung = self._rungs[-1]
                bucket = rung.next_bucket()
                if bucket is None:
                    continue  # rung exhausted; loop pops it
                if len(bucket) > _THRESHOLD:
                    lo, hi = rung.bucket_bounds()
                    self._spawn_rung(bucket, lo, hi)
                    continue
                for ev in bucket:
                    insort_right(self._bottom, _ReverseKeyed(ev))
                return
            if self._top:
                self._ladder_from_top()
                continue
            return

    def _ladder_from_top(self) -> None:
        """Convert the Top spill list into the first rung of a new ladder."""
        events = self._top
        self._top = []
        lo, hi = self._top_min, self._top_max
        self._top_min = float("inf")
        self._top_max = float("-inf")
        # Future insertions beyond the old max spill into the (new) Top.
        self._top_start = hi if hi > lo else lo + 1.0
        if len(events) <= _THRESHOLD or hi <= lo:
            for ev in events:
                insort_right(self._bottom, _ReverseKeyed(ev))
            return
        self._spawn_rung(events, lo, hi)

    def _spawn_rung(self, events: list[Event], lo: float, hi: float) -> None:
        """Re-bucket *events* spanning [lo, hi] into a finer rung."""
        n = max(len(events), 2)
        span = hi - lo
        if span <= 0:
            # Degenerate: identical timestamps — ordering falls to Bottom sort.
            for ev in events:
                insort_right(self._bottom, _ReverseKeyed(ev))
            return
        width = span / n
        rung = _Rung(lo, width, n + 1)
        for ev in events:
            if not rung.insert(ev):  # pragma: no cover - bounds guarantee fit
                insort_right(self._bottom, _ReverseKeyed(ev))
        self._rungs.append(rung)
