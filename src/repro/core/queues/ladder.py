"""Ladder queue — amortized O(1) event list resistant to skew (Tang et al. 2005).

The ladder queue was proposed as the successor to the calendar queue for
large-scale network simulation: it keeps calendar-like O(1) amortized cost
but, instead of one global bucket width, *recursively* re-buckets any bucket
that grows too large into a finer rung.  That makes it robust against the
skewed timestamp distributions that break a calendar queue's width estimate
— the property benchmark E2 measures.

Structure (three tiers):

``Top``
    Unsorted spill list for events beyond the ladder's horizon.  Cheap O(1)
    append; converted into a fresh rung when the ladder runs dry.
``Ladder``
    A stack of *rungs*; each rung is an array of buckets covering a time
    interval.  Rung *k+1* refines one oversized bucket of rung *k*.
``Bottom``
    A small sorted array holding the imminent events; delete-min reads it
    through an advancing cursor (no per-pop memmove).  When the cursor
    exhausts it, the next non-empty bucket of the lowest rung is sorted
    wholesale and *becomes* Bottom (or is re-bucketed into a new rung if it
    exceeds the threshold).

Performance note (the E2 drain fix): every rung keeps an incremental
record count, so emptiness checks are O(1).  The seed implementation
recomputed ``len(rung)`` by slicing and summing all remaining buckets on
every Bottom refill, which turned an N-event drain into O(N²/THRESHOLD)
work — the 200× collapse recorded in BENCH_kernel.json before this fix.
"""

from __future__ import annotations

from bisect import insort_right
from operator import attrgetter
from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["LadderQueue"]

#: Bucket population above which a bucket is refined into a new rung rather
#: than sorted directly into Bottom (the paper's THRES).
_THRESHOLD = 50

#: Target mean bucket occupancy when spawning a rung.  Occupancy ~1 (the
#: seed's choice) makes every pop pay a full Bottom-refill round trip;
#: a handful of events per bucket amortizes the refill across that many
#: pops while keeping the per-bucket sort a tiny C call.
_OCCUPANCY = 8

_SORT_KEY = attrgetter("sort_key")


class _Rung:
    __slots__ = ("start", "width", "buckets", "cur", "count")

    def __init__(self, start: float, width: float, nbuckets: int) -> None:
        self.start = start
        self.width = max(width, 1e-12)
        self.buckets: list[list[Event]] = [[] for _ in range(nbuckets)]
        self.cur = 0  # index of the first possibly-non-empty bucket
        self.count = 0  # records currently stored (live + cancelled)

    @property
    def end(self) -> float:
        """Exclusive upper time bound of the rung."""
        return self.start + self.width * len(self.buckets)

    def insert(self, event: Event) -> bool:
        """Insert if the event belongs at or after the current bucket."""
        i = int((event.time - self.start) / self.width)
        if i < self.cur or i >= len(self.buckets):
            return False
        self.buckets[i].append(event)
        self.count += 1
        return True

    def next_bucket(self) -> Optional[list[Event]]:
        """Detach and return the next non-empty bucket, advancing ``cur``."""
        buckets = self.buckets
        n = len(buckets)
        cur = self.cur
        while cur < n:
            bucket = buckets[cur]
            cur += 1
            if bucket:
                buckets[cur - 1] = []
                self.cur = cur
                self.count -= len(bucket)
                return bucket
        self.cur = cur
        return None

    def bucket_bounds(self) -> tuple[float, float]:
        """Time range of the bucket just returned by :meth:`next_bucket`."""
        i = self.cur - 1
        return (self.start + i * self.width, self.start + (i + 1) * self.width)

    def __len__(self) -> int:
        # O(1): incrementally maintained.  (Recomputing this by slicing
        # ``buckets[cur:]`` on every refill was the quadratic-drain bug.)
        return self.count


class LadderQueue(EventQueue):
    """Three-tier (Top / Ladder / Bottom) adaptive event list."""

    def __init__(self) -> None:
        super().__init__()
        self._top: list[Event] = []
        self._top_min = float("inf")
        self._top_max = float("-inf")
        self._top_start = float("-inf")  # events beyond this go to Top
        self._rungs: list[_Rung] = []
        #: Bottom: events sorted ascending by sort key; ``_bot`` is the
        #: read cursor — slots before it are already-popped ghosts, dropped
        #: wholesale when Bottom is replaced on refill.
        self._bottom: list[Event] = []
        self._bot = 0
        self._size = 0

    # -- interface ------------------------------------------------------------

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        t = event.time
        self._size += 1
        # Strictly greater: an event at exactly the boundary timestamp must
        # join the ladder/Bottom tiers, where same-time events sort by the
        # full (time, priority, seq) key — routing it to Top would let a
        # lower-priority twin already in the ladder pop first.
        if t > self._top_start:
            self._top.append(event)
            if t < self._top_min:
                self._top_min = t
            if t > self._top_max:
                self._top_max = t
            return
        for rung in self._rungs:
            if t >= rung.start and rung.insert(event):
                return
        insort_right(self._bottom, event, lo=self._bot, key=_SORT_KEY)

    def _pop_any(self) -> Optional[Event]:
        # Aligned with pop_if_le: cancelled records are purged (with exact
        # ``_dead`` bookkeeping) and the returned event's cancel hook is
        # detached — so a later ``cancel()`` on an already-popped event can
        # no longer fire this queue's callback and corrupt the dead count.
        return self.pop_if_le(float("inf"))

    def pop(self) -> Optional[Event]:
        return self.pop_if_le(float("inf"))

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        while True:
            bottom = self._bottom
            i = self._bot
            if i < len(bottom):
                ev = bottom[i]
                if not ev._cancelled:
                    if ev.time > horizon:
                        return None
                    self._bot = i + 1
                    self._size -= 1
                    ev._on_cancel = None
                    return ev
                # Purge the run of cancelled heads in one pass.
                n = len(bottom)
                while i < n and bottom[i]._cancelled:
                    i += 1
                    self._size -= 1
                    self._dead -= 1
                self._bot = i
                continue
            if self._size == 0:
                if bottom:
                    self._bottom = []
                    self._bot = 0
                return None
            self._refill_bottom()

    def peek(self) -> Optional[Event]:
        while True:
            bottom = self._bottom
            i = self._bot
            n = len(bottom)
            while i < n:
                ev = bottom[i]
                if not ev._cancelled:
                    self._bot = i
                    return ev
                i += 1
                self._size -= 1
                self._dead -= 1
            self._bot = i
            if self._size == 0:
                return None
            self._refill_bottom()

    def __len__(self) -> int:
        return self._size

    def _compact(self) -> None:
        self._top = [ev for ev in self._top if not ev._cancelled]
        if self._top:
            self._top_min = min(ev.time for ev in self._top)
            self._top_max = max(ev.time for ev in self._top)
        else:
            self._top_min = float("inf")
            self._top_max = float("-inf")
        for rung in self._rungs:
            count = 0
            for i, bucket in enumerate(rung.buckets):
                if bucket:
                    live = [ev for ev in bucket if not ev._cancelled]
                    rung.buckets[i] = live
                    count += len(live)
            rung.count = count
        while self._rungs and self._rungs[-1].count == 0:
            self._rungs.pop()
        self._bottom = [ev for ev in self._bottom[self._bot:]
                        if not ev._cancelled]
        self._bot = 0
        self._size = (len(self._top) + len(self._bottom)
                      + sum(r.count for r in self._rungs))

    def _iter_events(self) -> Iterator[Event]:
        yield from self._top
        for rung in self._rungs:
            for bucket in rung.buckets:
                yield from bucket
        yield from self._bottom[self._bot:]

    # -- tier management --------------------------------------------------------

    def _refill_bottom(self) -> None:
        """Replace exhausted Bottom with the earliest pending bucket (or Top)."""
        while True:
            # Drop exhausted rungs so their horizon reopens for insertion.
            rungs = self._rungs
            while rungs and rungs[-1].count == 0:
                rungs.pop()
            if rungs:
                rung = rungs[-1]
                bucket = rung.next_bucket()
                if bucket is None:
                    continue  # rung exhausted; loop pops it
                if len(bucket) > _THRESHOLD:
                    lo, hi = rung.bucket_bounds()
                    self._spawn_rung(bucket, lo, hi)
                    continue
                bucket.sort(key=_SORT_KEY)
                self._bottom = bucket
                self._bot = 0
                return
            if self._top:
                self._ladder_from_top()
                if self._bot < len(self._bottom):
                    return
                continue
            self._bottom = []
            self._bot = 0
            return

    def _ladder_from_top(self) -> None:
        """Convert the Top spill list into the first rung of a new ladder."""
        events = self._top
        self._top = []
        lo, hi = self._top_min, self._top_max
        self._top_min = float("inf")
        self._top_max = float("-inf")
        # The new horizon is the maximum *observed* timestamp: later pushes
        # strictly beyond it spill into the (new) Top, ties at the boundary
        # join Bottom where the full sort key orders them.  (The seed used
        # ``lo + 1.0`` when every spilled event shared one timestamp — an
        # arbitrary absolute offset that misrouted sub-unit-granularity
        # workloads into an ever-growing insort'd Bottom.)
        self._top_start = hi
        if len(events) <= _THRESHOLD or hi <= lo:
            events.sort(key=_SORT_KEY)
            self._bottom = events
            self._bot = 0
            return
        self._spawn_rung(events, lo, hi)

    def _spawn_rung(self, events: list[Event], lo: float, hi: float) -> None:
        """Re-bucket *events* spanning [lo, hi] into a finer rung."""
        span = hi - lo
        if span <= 0:
            # Degenerate: identical timestamps — ordering falls to Bottom
            # sort.  Only reachable with Bottom exhausted (both callers),
            # so the sorted batch simply becomes the new Bottom.
            events.sort(key=_SORT_KEY)
            self._bottom = events
            self._bot = 0
            return
        nb = max(len(events) // _OCCUPANCY, 2)
        width = span / nb
        rung = _Rung(lo, width, nb + 1)
        buckets = rung.buckets
        start = rung.start
        width = rung.width
        last = nb  # max valid index; guards float roundoff at t == hi
        for ev in events:
            i = int((ev.time - start) / width)
            buckets[i if i < last else last].append(ev)
        rung.count = len(events)
        self._rungs.append(rung)
