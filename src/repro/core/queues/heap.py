"""Binary-heap event queue — the O(log n) workhorse.

The structure most production DES engines default to: ``heapq`` over
``(time, priority, seq)`` keys.  Both insert and delete-min are O(log n)
with small constants (CPython's ``heapq`` is C-accelerated), making it the
robust choice the paper contrasts with amortized-O(1) calendar structures.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["HeapQueue"]


class HeapQueue(EventQueue):
    """Binary min-heap: O(log n) insert and delete-min."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))

    def _pop_any(self) -> Optional[Event]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][3] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def _iter_events(self) -> Iterator[Event]:
        for entry in self._heap:
            yield entry[3]
