"""Binary-heap event queue — the O(log n) workhorse.

The structure most production DES engines default to: ``heapq`` over
``(time, priority, seq)`` keys.  Both insert and delete-min are O(log n)
with small constants (CPython's ``heapq`` is C-accelerated), making it the
robust choice the paper contrasts with amortized-O(1) calendar structures.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["HeapQueue"]


class HeapQueue(EventQueue):
    """Binary min-heap: O(log n) insert and delete-min."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, int, Event]] = []

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        heappush(self._heap, (event.time, event.priority, event.seq, event))

    def _pop_any(self) -> Optional[Event]:
        if not self._heap:
            return None
        return heappop(self._heap)[3]

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[3]
            if ev._cancelled:
                heappop(heap)
                self._dead -= 1
                continue
            if entry[0] > horizon:
                return None
            heappop(heap)
            ev._on_cancel = None
            return ev
        return None

    def peek(self) -> Optional[Event]:
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heappop(heap)
            self._dead -= 1
        return heap[0][3] if heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e[3]._cancelled]
        heapify(self._heap)

    def _iter_events(self) -> Iterator[Event]:
        for entry in self._heap:
            yield entry[3]
