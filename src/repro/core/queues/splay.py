"""Splay-tree event queue — amortized O(log n) with access locality.

Splay trees were a popular event-list choice in 1990s simulation kernels
(e.g. DaSSF/SSF lineage): every operation splays the touched node to the
root, so workloads whose insertions cluster near the current minimum — very
common in hold-model event traffic — enjoy better-than-log behaviour, while
adversarial patterns degrade gracefully to amortized O(log n).

This is a classic bottom-up splay implemented with explicit parent pointers.
Delete-min splays the leftmost node and unlinks it; insert descends by
``sort_key`` and splays the new node.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..events import Event
from .base import EventQueue

__all__ = ["SplayQueue"]


class _Node:
    __slots__ = ("event", "key", "left", "right", "parent")

    def __init__(self, event: Event) -> None:
        self.event = event
        self.key = event.sort_key
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None


class SplayQueue(EventQueue):
    """Self-adjusting binary search tree keyed by event sort order."""

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[_Node] = None
        self._size = 0
        #: cached leftmost node so repeated peeks are O(1)
        self._min: Optional[_Node] = None

    # -- rotations -----------------------------------------------------------

    def _rotate(self, x: _Node) -> None:
        """Rotate *x* above its parent, preserving BST order."""
        p = x.parent
        assert p is not None
        g = p.parent
        if p.left is x:
            p.left = x.right
            if x.right is not None:
                x.right.parent = p
            x.right = p
        else:
            p.right = x.left
            if x.left is not None:
                x.left.parent = p
            x.left = p
        p.parent = x
        x.parent = g
        if g is None:
            self._root = x
        elif g.left is p:
            g.left = x
        else:
            g.right = x

    def _splay(self, x: _Node) -> None:
        """Move *x* to the root via zig / zig-zig / zig-zag steps."""
        while x.parent is not None:
            p = x.parent
            g = p.parent
            if g is None:
                self._rotate(x)  # zig
            elif (g.left is p) == (p.left is x):
                self._rotate(p)  # zig-zig: rotate parent first
                self._rotate(x)
            else:
                self._rotate(x)  # zig-zag
                self._rotate(x)

    # -- EventQueue interface -------------------------------------------------

    def push(self, event: Event) -> None:
        if event._cancelled:
            self._dead += 1
        else:
            event._on_cancel = self._cancel_cb
        node = _Node(event)
        if self._root is None:
            self._root = node
            self._min = node
            self._size = 1
            return
        cur = self._root
        while True:
            if node.key < cur.key:
                if cur.left is None:
                    cur.left = node
                    node.parent = cur
                    break
                cur = cur.left
            else:
                if cur.right is None:
                    cur.right = node
                    node.parent = cur
                    break
                cur = cur.right
        self._size += 1
        if self._min is not None and node.key < self._min.key:
            self._min = node
        self._splay(node)

    def _pop_any(self) -> Optional[Event]:
        if self._root is None:
            return None
        node = self._min if self._min is not None else self._leftmost(self._root)
        assert node is not None
        # Unlink the minimum directly instead of splaying it to the root
        # first.  The leftmost node has no left child, so its right subtree
        # splices into its parent in O(1); splaying stays on the insert path,
        # where the access-locality payoff lives.  Over a full drain each
        # node is walked at most once while seeking the new minimum, so
        # delete-min is amortized O(1) — the per-pop splay was pure rotation
        # overhead (the 0.9× fused-protocol regression in BENCH_kernel.json).
        right = node.right
        parent = node.parent
        if right is not None:
            right.parent = parent
        if parent is None:
            self._root = right
        else:
            parent.left = right
        self._size -= 1
        # Next-smallest: leftmost of the spliced subtree, else the parent
        # (the minimum is always its parent's left child).
        self._min = self._leftmost(right) if right is not None else parent
        node.left = node.right = node.parent = None
        return node.event

    @staticmethod
    def _leftmost(node: Optional[_Node]) -> Optional[_Node]:
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node

    def pop_if_le(self, horizon: float) -> Optional[Event]:
        while self._min is not None and self._min.event._cancelled:
            self._pop_any()
            self._dead -= 1
        node = self._min
        if node is None or node.event.time > horizon:
            return None
        ev = self._pop_any()
        ev._on_cancel = None
        return ev

    def peek(self) -> Optional[Event]:
        while self._min is not None and self._min.event._cancelled:
            self._pop_any()
            self._dead -= 1
        return self._min.event if self._min is not None else None

    def __len__(self) -> int:
        return self._size

    def _compact(self) -> None:
        # Rebuild a balanced tree from the live events in sorted order; the
        # next splays re-adjust it to the access pattern anyway.
        live = [ev for ev in self._iter_events() if not ev._cancelled]
        self._size = len(live)
        self._root = self._build(live, 0, len(live))
        self._min = self._leftmost(self._root)

    def _build(self, events: list[Event], lo: int, hi: int) -> Optional[_Node]:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        node = _Node(events[mid])
        node.left = self._build(events, lo, mid)
        node.right = self._build(events, mid + 1, hi)
        if node.left is not None:
            node.left.parent = node
        if node.right is not None:
            node.right.parent = node
        return node

    def _iter_events(self) -> Iterator[Event]:
        # Iterative in-order walk (recursion would overflow on long zig chains).
        stack: list[_Node] = []
        cur = self._root
        while stack or cur is not None:
            while cur is not None:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.event
            cur = cur.right
