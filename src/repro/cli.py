"""Command-line interface: the survey and validation artifacts on demand.

The taxonomy's *user interface* axis distinguishes textual from graphical
tooling; this is the framework's textual interface, exposing the artifacts
a reader of the paper would ask for:

```
python -m repro table1 [--format ascii|markdown|csv]   # regenerate Table 1
python -m repro survey                                  # Table 1 + provenance
python -m repro coverage                                # parameter-space map
python -m repro diff SIM_A SIM_B                        # axis-by-axis diff
python -m repro validate [--rho R] [--jobs N]           # M/M/1 vs theory
python -m repro validate --trace out.json --profile     # + obs artifacts
python -m repro profile [--model mm1|hold] [...]        # obs hot-spot hunt
python -m repro classify                                # classify live engines
python -m repro executors [--executor all] [...]        # E7 executor shoot-out
python -m repro flows [--mode both] [...]               # E8 sharing-engine duel
```
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: one sub-command per survey/validation artifact."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Large-scale distributed systems simulation suite "
                    "(ICPP'09 taxonomy reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_table.add_argument("--format", choices=("ascii", "markdown", "csv"),
                         default="ascii")
    p_table.add_argument("--include-repro", action="store_true",
                         help="add this framework as a seventh column")

    sub.add_parser("survey", help="Table 1 plus per-axis provenance notes")
    sub.add_parser("coverage", help="taxonomy parameter-space coverage")

    p_diff = sub.add_parser("diff", help="compare two simulators axis by axis")
    p_diff.add_argument("left")
    p_diff.add_argument("right")

    p_val = sub.add_parser("validate", help="simulate M/M/1 and compare to theory")
    p_val.add_argument("--rho", type=float, default=0.6)
    p_val.add_argument("--jobs", type=int, default=20_000)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace (Perfetto-loadable) of the run")
    p_val.add_argument("--profile", action="store_true",
                       help="print the handler hot-spot table and run telemetry")

    p_prof = sub.add_parser(
        "profile", help="run a workload under the obs profiler/tracer")
    p_prof.add_argument("--model", choices=("mm1", "hold"), default="mm1",
                        help="mm1: the validation queue; hold: the classic "
                             "hold-model kernel stressor")
    p_prof.add_argument("--rho", type=float, default=0.6,
                        help="utilization for --model mm1")
    p_prof.add_argument("--jobs", type=int, default=20_000,
                        help="jobs (mm1) or initial event population (hold)")
    p_prof.add_argument("--horizon", type=float, default=10.0,
                        help="sim-time horizon for --model hold")
    p_prof.add_argument("--queue", default="heap",
                        help="event-list structure "
                             "(linear|heap|splay|calendar|ladder|adaptive)")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--top", type=int, default=15,
                        help="hot-spot table rows")
    p_prof.add_argument("--trace", metavar="FILE", default=None,
                        help="also write the Chrome trace JSON")
    p_prof.add_argument("--csv", metavar="FILE", default=None,
                        help="also write telemetry + per-handler CSV metrics")
    p_prof.add_argument("--heartbeat", type=float, default=None, metavar="SECS",
                        help="emit a progress line every SECS wall seconds")

    sub.add_parser("classify", help="classify the live kernel engines")

    p_ex = sub.add_parser(
        "executors",
        help="run the partitioned-ring model under the distributed executors")
    p_ex.add_argument("--executor", default="all",
                      choices=("sequential", "cmb", "window",
                               "window-threaded", "optimistic", "all"),
                      help="which synchronization protocol (default: all, "
                           "which also cross-checks committed streams)")
    p_ex.add_argument("--sites", type=int, default=4,
                      help="ring size (one LP per site)")
    p_ex.add_argument("--jobs", type=int, default=150,
                      help="local jobs per site")
    p_ex.add_argument("--until", type=float, default=400.0,
                      help="simulation horizon")
    p_ex.add_argument("--lookahead", type=float, default=1.0,
                      help="channel lookahead (conservative blocking bound)")
    p_ex.add_argument("--seed", type=int, default=0)
    p_ex.add_argument("--batch", type=int, default=32,
                      help="optimistic: events per LP per round")
    p_ex.add_argument("--checkpoint-every", type=int, default=8,
                      help="optimistic: firings between state snapshots")
    p_ex.add_argument("--throttle", type=float, default=None,
                      help="optimistic: optimism window beyond GVT "
                           "(default unbounded)")

    p_fl = sub.add_parser(
        "flows",
        help="run the flow-churn workload under the bandwidth-sharing engines")
    p_fl.add_argument("--mode", default="both",
                      choices=("incremental", "full", "both"),
                      help="incremental component-scoped engine, the full "
                           "progressive-filling reference, or both (which "
                           "also cross-checks completion times)")
    p_fl.add_argument("--pairs", type=int, default=40,
                      help="disjoint source->sink link pairs")
    p_fl.add_argument("--transfers", type=int, default=8,
                      help="chained transfers per pair")
    p_fl.add_argument("--backbone", type=int, default=4,
                      help="long-lived flows sharing the backbone link")
    p_fl.add_argument("--verify", action="store_true",
                      help="cross-check every incremental update against "
                           "the full reference while running (slow)")
    return parser


def _cmd_table1(args) -> int:
    from .taxonomy import SURVEYED, all_records, render_ascii, render_csv, render_markdown

    records = all_records() if args.include_repro else list(SURVEYED)
    renderer = {"ascii": render_ascii, "markdown": render_markdown,
                "csv": render_csv}[args.format]
    print(renderer(records), end="")
    return 0


def _cmd_survey(_args) -> int:
    from .taxonomy import survey_report

    print(survey_report(), end="")
    return 0


def _cmd_coverage(_args) -> int:
    from .taxonomy import SURVEYED, all_records, complementarity, coverage

    cov = coverage(list(SURVEYED))
    print("Taxonomy parameter-space coverage (surveyed six):")
    for axis, cells in cov.items():
        hit = sum(cells.values())
        print(f"  {axis:<20} {hit}/{len(cells)} values covered")
        for value, covered in cells.items():
            if not covered:
                print(f"      missing: {value}")
    print(f"\njoint coverage: surveyed six = {complementarity(list(SURVEYED)):.0%}, "
          f"with repro = {complementarity(all_records()):.0%}")
    return 0


def _cmd_diff(args) -> int:
    from .taxonomy import diff, record, similarity

    try:
        a, b = record(args.left), record(args.right)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{a.name} vs {b.name} — similarity {similarity(a, b):.0%}")
    for d in diff(a, b):
        print(f"  {d.axis:<20} {d.left}  |  {d.right}")
    return 0


def _cmd_validate(args) -> int:
    from .validation import MM1, compare, simulate_mm1

    if not 0 < args.rho < 1:
        print("error: --rho must be in (0,1)", file=sys.stderr)
        return 2
    obs = None
    if args.trace or args.profile:
        from .obs import Observation

        obs = Observation(trace=bool(args.trace), profile=True, telemetry=True)
    model = MM1(args.rho, 1.0)
    stats = simulate_mm1(args.rho, 1.0, n_jobs=args.jobs, seed=args.seed,
                         obs=obs)
    report = compare(model, stats)
    print(f"M/M/1  rho={args.rho}  ({args.jobs} jobs, seed {args.seed})")
    print(f"  {'qty':<12} {'analytic':>10} {'measured':>10} {'rel err':>8}")
    for qty, analytic, measured, err in report.to_rows():
        print(f"  {qty:<12} {analytic:>10.4f} {measured:>10.4f} {err:>7.2%}")
    print(f"  worst relative error: {report.max_rel_error:.2%}")
    if obs is not None:
        _emit_obs(obs, trace=args.trace, profile=args.profile, top=15)
    return 0 if report.max_rel_error < 0.15 else 1


def _emit_obs(obs, trace: str | None, profile: bool, top: int) -> None:
    """Shared tail for observed commands: hot spots, telemetry, trace file."""
    if profile:
        sim = obs.bindings[0].sim if obs.bindings else None
        snap = obs.telemetry.snapshot(sim) if obs.telemetry is not None else {}
        print("\nHandler hot spots (wall time):")
        print(obs.profile_table(top=top))
        if snap:
            print(f"\ntelemetry: {snap['events']:,} events in "
                  f"{snap['wall_seconds']:.3f}s wall "
                  f"({snap['events_per_sec']:,.0f} ev/s, "
                  f"sim/wall {snap['sim_wall_ratio']:.3g}x)")
    if trace:
        n = obs.export_chrome(trace)
        print(f"\nwrote Chrome trace: {trace} ({n} trace events) — "
              f"load it at https://ui.perfetto.dev")


def _cmd_profile(args) -> int:
    from .obs import Observation

    obs = Observation(trace=bool(args.trace), profile=True, telemetry=True,
                      heartbeat=args.heartbeat)
    if args.model == "mm1":
        from .validation import simulate_mm1

        if not 0 < args.rho < 1:
            print("error: --rho must be in (0,1)", file=sys.stderr)
            return 2
        simulate_mm1(args.rho, 1.0, n_jobs=args.jobs, seed=args.seed, obs=obs)
        print(f"profiled M/M/1  rho={args.rho}  ({args.jobs} jobs, "
              f"seed {args.seed})")
    else:  # hold — the kernel benchmark's classic self-regenerating load
        from .core import Simulator

        sim = Simulator(queue=args.queue, seed=args.seed)
        obs.attach(sim, track=f"hold-{args.queue}")
        stream = sim.stream("hold")

        def fire() -> None:
            sim.schedule(stream.exponential(1.0), fire, label="hold")

        for _ in range(args.jobs):
            sim.schedule(stream.exponential(1.0), fire, label="hold")
        sim.run(until=args.horizon)
        print(f"profiled hold model  queue={args.queue}  "
              f"(population {args.jobs}, horizon {args.horizon})")
    _emit_obs(obs, trace=args.trace, profile=True, top=args.top)
    if args.csv:
        with open(args.csv, "w") as fp:
            fp.write(obs.metrics_csv())
        print(f"wrote CSV metrics: {args.csv}")
    return 0


def _cmd_classify(_args) -> int:
    from .core import Simulator, TimeDrivenSimulator
    from .taxonomy import classify_engine

    for label, sim in (("event-driven + heap", Simulator(queue="heap")),
                       ("event-driven + calendar", Simulator(queue="calendar")),
                       ("time-driven + heap", TimeDrivenSimulator(tick=1.0))):
        info = classify_engine(sim)
        cells = ", ".join(f"{k}={getattr(v, 'value', v)}" for k, v in info.items())
        print(f"  {label:<26} -> {cells}")
    return 0


def _cmd_executors(args) -> int:
    from .core.optimistic import OptimisticExecutor
    from .core.parallel import (CMBExecutor, SequentialExecutor,
                                WindowExecutor)
    from .workloads.partitioned import build_partitioned_ring

    factories = {
        "sequential": SequentialExecutor,
        "cmb": CMBExecutor,
        "window": WindowExecutor,
        "window-threaded": lambda: WindowExecutor(threads=4),
        "optimistic": lambda: OptimisticExecutor(
            batch=args.batch, checkpoint_every=args.checkpoint_every,
            throttle=args.throttle),
    }
    names = (list(factories) if args.executor == "all"
             else [args.executor])
    print(f"partitioned ring: K={args.sites} sites, {args.jobs} jobs/site, "
          f"horizon {args.until}, lookahead {args.lookahead}, "
          f"seed {args.seed}")
    header = (f"  {'executor':<16} {'events':>8} {'committed':>9} "
              f"{'rollb':>6} {'antis':>6} {'nulls':>6} {'eff':>6} "
              f"{'wall s':>8} {'cmt ev/s':>10}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    streams = {}
    for name in names:
        model = build_partitioned_ring(
            k=args.sites, lookahead=args.lookahead, seed=args.seed,
            jobs_per_site=args.jobs, horizon=args.until)
        stats = factories[name]().run(model.lps, until=args.until)
        eps = (stats.committed_events / stats.wall_seconds
               if stats.wall_seconds > 0 else 0.0)
        print(f"  {name:<16} {stats.events:>8,} {stats.committed_events:>9,} "
              f"{stats.rollbacks:>6} {stats.anti_messages:>6} "
              f"{stats.null_messages:>6} {stats.efficiency:>6.3f} "
              f"{stats.wall_seconds:>8.3f} {eps:>10,.0f}")
        streams[name] = repr((model.results(), model.monitor_stats()))
    if len(streams) > 1:
        ref = streams["sequential"]
        diverged = [n for n, s in streams.items() if s != ref]
        if diverged:
            print(f"FAIL: committed streams diverged from sequential: "
                  f"{', '.join(diverged)}", file=sys.stderr)
            return 1
        print(f"  committed streams identical across all "
              f"{len(streams)} executors")
    return 0


def _cmd_flows(args) -> int:
    import math

    from .workloads.flowchurn import build_flow_churn

    modes = (["incremental", "full"] if args.mode == "both" else [args.mode])
    print(f"flow churn: {args.pairs} pairs x {args.transfers} transfers "
          f"+ {args.backbone} backbone flows"
          + (" (verify on)" if args.verify else ""))
    header = (f"  {'engine':<12} {'wall s':>8} {'events':>8} {'recomp':>8} "
              f"{'touched':>9} {'resched':>9} {'preserv':>8}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    completions = {}
    for mode in modes:
        model = build_flow_churn(
            pairs=args.pairs, transfers_per_pair=args.transfers,
            backbone_flows=args.backbone, incremental=(mode == "incremental"),
            verify=args.verify and mode == "incremental").run()
        s = model.stats()
        print(f"  {mode:<12} {s['wall_seconds']:>8.3f} {s['events']:>8,} "
              f"{s['recomputes']:>8,} {s['flows_touched']:>9,} "
              f"{s['rescheduled']:>9,} {s['preserved']:>8,}")
        completions[mode] = model.completion_times()
    if len(completions) > 1:
        worst = max((abs(a - b) / max(abs(b), 1e-30) for a, b in
                     zip(completions["incremental"], completions["full"])),
                    default=0.0)
        if not all(math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
                   for a, b in zip(completions["incremental"],
                                   completions["full"])):
            print(f"FAIL: completion times diverged between engines "
                  f"(worst relative diff {worst:.3e})", file=sys.stderr)
            return 1
        print(f"  completion times identical across engines "
              f"(worst relative diff {worst:.3e})")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "survey": _cmd_survey,
    "coverage": _cmd_coverage,
    "diff": _cmd_diff,
    "validate": _cmd_validate,
    "profile": _cmd_profile,
    "classify": _cmd_classify,
    "executors": _cmd_executors,
    "flows": _cmd_flows,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
