"""Command-line interface: the survey and validation artifacts on demand.

The taxonomy's *user interface* axis distinguishes textual from graphical
tooling; this is the framework's textual interface, exposing the artifacts
a reader of the paper would ask for:

```
python -m repro table1 [--format ascii|markdown|csv]   # regenerate Table 1
python -m repro survey                                  # Table 1 + provenance
python -m repro coverage                                # parameter-space map
python -m repro diff SIM_A SIM_B                        # axis-by-axis diff
python -m repro validate [--rho R] [--jobs N]           # M/M/1 vs theory
python -m repro validate --trace out.json --profile     # + obs artifacts
python -m repro profile [--model mm1|hold] [...]        # obs hot-spot hunt
python -m repro classify                                # classify live engines
python -m repro executors [--executor all] [...]        # E7 executor shoot-out
python -m repro flows [--mode both] [...]               # E8 sharing-engine duel
python -m repro campaign [--grid rho=0.5,0.7] [...]     # E10 ensemble engine
python -m repro campaign --report --prom metrics.prom   # fleet telemetry
python -m repro campaign --evolve --space c=1:8:int ... # evolutionary search
python -m repro campaign --scenario dependability ...   # E12 fault campaigns
```
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: one sub-command per survey/validation artifact."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Large-scale distributed systems simulation suite "
                    "(ICPP'09 taxonomy reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="regenerate the paper's Table 1")
    p_table.add_argument("--format", choices=("ascii", "markdown", "csv"),
                         default="ascii")
    p_table.add_argument("--include-repro", action="store_true",
                         help="add this framework as a seventh column")

    sub.add_parser("survey", help="Table 1 plus per-axis provenance notes")
    sub.add_parser("coverage", help="taxonomy parameter-space coverage")

    p_diff = sub.add_parser("diff", help="compare two simulators axis by axis")
    p_diff.add_argument("left")
    p_diff.add_argument("right")

    p_val = sub.add_parser("validate", help="simulate M/M/1 and compare to theory")
    p_val.add_argument("--rho", type=float, default=0.6)
    p_val.add_argument("--jobs", type=int, default=20_000)
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Chrome trace (Perfetto-loadable) of the run")
    p_val.add_argument("--profile", action="store_true",
                       help="print the handler hot-spot table and run telemetry")
    p_val.add_argument("--runs", type=int, default=1,
                       help="independent replications; >1 adds the campaign "
                            "CI-contains-theory verdict to the point check")
    p_val.add_argument("--workers", type=int, default=1,
                       help="campaign worker processes for --runs > 1")
    p_val.add_argument("--level", type=float, default=0.95,
                       help="confidence level for the CI verdict")
    p_val.add_argument("--heartbeat", type=float, default=None, metavar="SECS",
                       help="emit a progress line every SECS wall seconds "
                            "(ensemble runs inherit it per run)")

    p_prof = sub.add_parser(
        "profile", help="run a workload under the obs profiler/tracer")
    p_prof.add_argument("--model", choices=("mm1", "hold"), default="mm1",
                        help="mm1: the validation queue; hold: the classic "
                             "hold-model kernel stressor")
    p_prof.add_argument("--rho", type=float, default=0.6,
                        help="utilization for --model mm1")
    p_prof.add_argument("--jobs", type=int, default=20_000,
                        help="jobs (mm1) or initial event population (hold)")
    p_prof.add_argument("--horizon", type=float, default=10.0,
                        help="sim-time horizon for --model hold")
    p_prof.add_argument("--queue", default="heap",
                        help="event-list structure "
                             "(linear|heap|splay|calendar|ladder|adaptive)")
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--top", type=int, default=15,
                        help="hot-spot table rows")
    p_prof.add_argument("--trace", metavar="FILE", default=None,
                        help="also write the Chrome trace JSON")
    p_prof.add_argument("--csv", metavar="FILE", default=None,
                        help="also write telemetry + per-handler CSV metrics")
    p_prof.add_argument("--heartbeat", type=float, default=None, metavar="SECS",
                        help="emit a progress line every SECS wall seconds")

    sub.add_parser("classify", help="classify the live kernel engines")

    p_ex = sub.add_parser(
        "executors",
        help="run the partitioned-ring model under the distributed executors")
    p_ex.add_argument("--executor", default="all",
                      choices=("sequential", "cmb", "window",
                               "window-threaded", "optimistic", "all"),
                      help="which synchronization protocol (default: all, "
                           "which also cross-checks committed streams)")
    p_ex.add_argument("--sites", type=int, default=4,
                      help="ring size (one LP per site)")
    p_ex.add_argument("--jobs", type=int, default=150,
                      help="local jobs per site")
    p_ex.add_argument("--until", type=float, default=400.0,
                      help="simulation horizon")
    p_ex.add_argument("--lookahead", type=float, default=1.0,
                      help="channel lookahead (conservative blocking bound)")
    p_ex.add_argument("--seed", type=int, default=0)
    p_ex.add_argument("--batch", type=int, default=32,
                      help="optimistic: events per LP per round")
    p_ex.add_argument("--checkpoint-every", type=int, default=8,
                      help="optimistic: firings between state snapshots")
    p_ex.add_argument("--throttle", type=float, default=None,
                      help="optimistic: optimism window beyond GVT "
                           "(default unbounded)")

    p_fl = sub.add_parser(
        "flows",
        help="run the flow-churn workload under the bandwidth-sharing engines")
    p_fl.add_argument("--mode", default="both",
                      choices=("incremental", "full", "both"),
                      help="incremental component-scoped engine, the full "
                           "progressive-filling reference, or both (which "
                           "also cross-checks completion times)")
    p_fl.add_argument("--pairs", type=int, default=40,
                      help="disjoint source->sink link pairs")
    p_fl.add_argument("--transfers", type=int, default=8,
                      help="chained transfers per pair")
    p_fl.add_argument("--backbone", type=int, default=4,
                      help="long-lived flows sharing the backbone link")
    p_fl.add_argument("--verify", action="store_true",
                      help="cross-check every incremental update against "
                           "the full reference while running (slow)")

    p_cp = sub.add_parser(
        "campaign",
        help="run a Monte Carlo ensemble (or evolutionary search) of a "
             "registered scenario")
    p_cp.add_argument("--scenario", default="mm1",
                      help="registered scenario name "
                           "(mm1|mmc|provision|dependability|...)")
    p_cp.add_argument("--grid", action="append", default=[],
                      metavar="NAME=V1,V2,...",
                      help="sweep axis (repeatable); values are parsed as "
                           "int/float when possible")
    p_cp.add_argument("--set", action="append", default=[], dest="base",
                      metavar="NAME=VALUE",
                      help="base parameter applied to every run (repeatable)")
    p_cp.add_argument("--runs", type=int, default=5,
                      help="replications per grid point")
    p_cp.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial, in-process)")
    p_cp.add_argument("--seed", type=int, default=0,
                      help="campaign root seed")
    p_cp.add_argument("--metrics", default=None,
                      help="comma-separated metrics to summarize "
                           "(default: every numeric metric)")
    p_cp.add_argument("--level", type=float, default=0.95,
                      help="confidence level for the cross-run intervals")
    p_cp.add_argument("--timeout", type=float, default=None,
                      help="per-run wall timeout in seconds (pool only)")
    p_cp.add_argument("--retries", type=int, default=1,
                      help="extra attempts for failed/hung runs")
    p_cp.add_argument("--heartbeat", type=float, default=None, metavar="SECS",
                      help="per-run telemetry heartbeat every SECS wall "
                           "seconds; under --workers > 1 also ships live "
                           "beat frames and arms the stall detector")
    p_cp.add_argument("--report", action="store_true",
                      help="print the campaign telemetry report (per-worker "
                           "and per-point rates, slowest runs)")
    p_cp.add_argument("--prom", metavar="FILE", default=None,
                      help="write the merged metrics registry in Prometheus "
                           "text exposition format")
    p_cp.add_argument("--recorder-dir", metavar="DIR", default=None,
                      help="directory for flight-recorder post-mortem JSONL "
                           "dumps (written when a run fails, times out, or "
                           "loses its worker)")
    p_cp.add_argument("--evolve", action="store_true",
                      help="evolutionary search instead of a grid sweep")
    p_cp.add_argument("--space", action="append", default=[],
                      metavar="NAME=LO:HI[:int]|A,B,C",
                      help="search axis for --evolve (repeatable); LO:HI is "
                           "a float range unless the :int suffix is given")
    p_cp.add_argument("--objective", default="W",
                      help="metric expression to optimize, e.g. "
                           "'W + 0.15 * servers'")
    p_cp.add_argument("--mode", choices=("min", "max"), default="min",
                      help="optimize direction for --evolve")
    p_cp.add_argument("--population", type=int, default=12,
                      help="genomes per generation for --evolve")
    p_cp.add_argument("--generations", type=int, default=8,
                      help="generations for --evolve")
    return parser


def _cmd_table1(args) -> int:
    from .taxonomy import SURVEYED, all_records, render_ascii, render_csv, render_markdown

    records = all_records() if args.include_repro else list(SURVEYED)
    renderer = {"ascii": render_ascii, "markdown": render_markdown,
                "csv": render_csv}[args.format]
    print(renderer(records), end="")
    return 0


def _cmd_survey(_args) -> int:
    from .taxonomy import survey_report

    print(survey_report(), end="")
    return 0


def _cmd_coverage(_args) -> int:
    from .taxonomy import SURVEYED, all_records, complementarity, coverage

    cov = coverage(list(SURVEYED))
    print("Taxonomy parameter-space coverage (surveyed six):")
    for axis, cells in cov.items():
        hit = sum(cells.values())
        print(f"  {axis:<20} {hit}/{len(cells)} values covered")
        for value, covered in cells.items():
            if not covered:
                print(f"      missing: {value}")
    print(f"\njoint coverage: surveyed six = {complementarity(list(SURVEYED)):.0%}, "
          f"with repro = {complementarity(all_records()):.0%}")
    return 0


def _cmd_diff(args) -> int:
    from .taxonomy import diff, record, similarity

    try:
        a, b = record(args.left), record(args.right)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{a.name} vs {b.name} — similarity {similarity(a, b):.0%}")
    for d in diff(a, b):
        print(f"  {d.axis:<20} {d.left}  |  {d.right}")
    return 0


def _cmd_validate(args) -> int:
    from .validation import MM1, compare, simulate_mm1

    if not 0 < args.rho < 1:
        print("error: --rho must be in (0,1)", file=sys.stderr)
        return 2
    obs = None
    if args.trace or args.profile or args.heartbeat is not None:
        from .obs import Observation

        obs = Observation(trace=bool(args.trace), profile=True,
                          telemetry=True, heartbeat=args.heartbeat)
    model = MM1(args.rho, 1.0)
    stats = simulate_mm1(args.rho, 1.0, n_jobs=args.jobs, seed=args.seed,
                         obs=obs)
    report = compare(model, stats)
    print(f"M/M/1  rho={args.rho}  ({args.jobs} jobs, seed {args.seed})")
    print(f"  {'qty':<12} {'analytic':>10} {'measured':>10} {'rel err':>8}")
    for qty, analytic, measured, err in report.to_rows():
        print(f"  {qty:<12} {analytic:>10.4f} {measured:>10.4f} {err:>7.2%}")
    print(f"  worst relative error: {report.max_rel_error:.2%}")
    ci_ok = True
    if args.runs > 1:
        ci_ok = _validate_ensemble(args, model)
    if obs is not None:
        _emit_obs(obs, trace=args.trace, profile=args.profile, top=15)
    return 0 if report.max_rel_error < 0.15 and ci_ok else 1


def _validate_ensemble(args, model) -> bool:
    """The campaign upgrade of validate: CI-contains-theory over N runs."""
    from .campaign import CampaignSpec, coverage_verdict, run_campaign

    spec = CampaignSpec("mm1", base={"rho": args.rho, "jobs": args.jobs},
                        replications=args.runs, root_seed=args.seed)
    result = run_campaign(spec, workers=args.workers,
                          heartbeat=getattr(args, "heartbeat", None))
    summaries = result.summaries(["L", "Lq", "W", "Wq", "utilization"],
                                 level=args.level)
    verdict = coverage_verdict(summaries, model)
    print(f"\n  ensemble: {result.n_ok}/{len(result.records)} runs ok, "
          f"{result.workers} worker(s), {result.wall_seconds:.2f}s wall")
    print(f"  {'qty':<12} {'analytic':>10} {'mean':>10} "
          f"{int(args.level * 100):>3}% CI{'':<17} verdict")
    all_contain = result.n_ok == len(result.records)
    for qty in sorted(verdict):
        v = verdict[qty]
        mark = "contains" if v["contains"] else "MISSES"
        all_contain &= v["contains"]
        print(f"  {qty:<12} {v['theory']:>10.4f} {v['mean']:>10.4f} "
              f"[{v['lo']:>10.4f}, {v['hi']:>10.4f}]  {mark}")
    print(f"  CI verdict: {'theory inside every interval' if all_contain else 'some interval excludes theory'}")
    return all_contain


def _emit_obs(obs, trace: str | None, profile: bool, top: int) -> None:
    """Shared tail for observed commands: hot spots, telemetry, trace file."""
    if profile:
        sim = obs.bindings[0].sim if obs.bindings else None
        snap = obs.telemetry.snapshot(sim) if obs.telemetry is not None else {}
        print("\nHandler hot spots (wall time):")
        print(obs.profile_table(top=top))
        if snap:
            print(f"\ntelemetry: {snap['events']:,} events in "
                  f"{snap['wall_seconds']:.3f}s wall "
                  f"({snap['events_per_sec']:,.0f} ev/s, "
                  f"sim/wall {snap['sim_wall_ratio']:.3g}x)")
    if trace:
        n = obs.export_chrome(trace)
        print(f"\nwrote Chrome trace: {trace} ({n} trace events) — "
              f"load it at https://ui.perfetto.dev")


def _cmd_profile(args) -> int:
    from .obs import Observation

    obs = Observation(trace=bool(args.trace), profile=True, telemetry=True,
                      heartbeat=args.heartbeat)
    if args.model == "mm1":
        from .validation import simulate_mm1

        if not 0 < args.rho < 1:
            print("error: --rho must be in (0,1)", file=sys.stderr)
            return 2
        simulate_mm1(args.rho, 1.0, n_jobs=args.jobs, seed=args.seed, obs=obs)
        print(f"profiled M/M/1  rho={args.rho}  ({args.jobs} jobs, "
              f"seed {args.seed})")
    else:  # hold — the kernel benchmark's classic self-regenerating load
        from .core import Simulator

        sim = Simulator(queue=args.queue, seed=args.seed)
        obs.attach(sim, track=f"hold-{args.queue}")
        stream = sim.stream("hold")

        def fire() -> None:
            sim.schedule(stream.exponential(1.0), fire, label="hold")

        for _ in range(args.jobs):
            sim.schedule(stream.exponential(1.0), fire, label="hold")
        sim.run(until=args.horizon)
        print(f"profiled hold model  queue={args.queue}  "
              f"(population {args.jobs}, horizon {args.horizon})")
    _emit_obs(obs, trace=args.trace, profile=True, top=args.top)
    if args.csv:
        with open(args.csv, "w") as fp:
            fp.write(obs.metrics_csv())
        print(f"wrote CSV metrics: {args.csv}")
    return 0


def _cmd_classify(_args) -> int:
    from .core import Simulator, TimeDrivenSimulator
    from .taxonomy import classify_engine

    for label, sim in (("event-driven + heap", Simulator(queue="heap")),
                       ("event-driven + calendar", Simulator(queue="calendar")),
                       ("time-driven + heap", TimeDrivenSimulator(tick=1.0))):
        info = classify_engine(sim)
        cells = ", ".join(f"{k}={getattr(v, 'value', v)}" for k, v in info.items())
        print(f"  {label:<26} -> {cells}")
    return 0


def _cmd_executors(args) -> int:
    from .core.optimistic import OptimisticExecutor
    from .core.parallel import (CMBExecutor, SequentialExecutor,
                                WindowExecutor)
    from .workloads.partitioned import build_partitioned_ring

    factories = {
        "sequential": SequentialExecutor,
        "cmb": CMBExecutor,
        "window": WindowExecutor,
        "window-threaded": lambda: WindowExecutor(threads=4),
        "optimistic": lambda: OptimisticExecutor(
            batch=args.batch, checkpoint_every=args.checkpoint_every,
            throttle=args.throttle),
    }
    names = (list(factories) if args.executor == "all"
             else [args.executor])
    print(f"partitioned ring: K={args.sites} sites, {args.jobs} jobs/site, "
          f"horizon {args.until}, lookahead {args.lookahead}, "
          f"seed {args.seed}")
    header = (f"  {'executor':<16} {'events':>8} {'committed':>9} "
              f"{'rollb':>6} {'antis':>6} {'nulls':>6} {'eff':>6} "
              f"{'wall s':>8} {'cmt ev/s':>10}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    streams = {}
    for name in names:
        model = build_partitioned_ring(
            k=args.sites, lookahead=args.lookahead, seed=args.seed,
            jobs_per_site=args.jobs, horizon=args.until)
        stats = factories[name]().run(model.lps, until=args.until)
        eps = (stats.committed_events / stats.wall_seconds
               if stats.wall_seconds > 0 else 0.0)
        print(f"  {name:<16} {stats.events:>8,} {stats.committed_events:>9,} "
              f"{stats.rollbacks:>6} {stats.anti_messages:>6} "
              f"{stats.null_messages:>6} {stats.efficiency:>6.3f} "
              f"{stats.wall_seconds:>8.3f} {eps:>10,.0f}")
        streams[name] = repr((model.results(), model.monitor_stats()))
    if len(streams) > 1:
        ref = streams["sequential"]
        diverged = [n for n, s in streams.items() if s != ref]
        if diverged:
            print(f"FAIL: committed streams diverged from sequential: "
                  f"{', '.join(diverged)}", file=sys.stderr)
            return 1
        print(f"  committed streams identical across all "
              f"{len(streams)} executors")
    return 0


def _cmd_flows(args) -> int:
    import math

    from .workloads.flowchurn import build_flow_churn

    modes = (["incremental", "full"] if args.mode == "both" else [args.mode])
    print(f"flow churn: {args.pairs} pairs x {args.transfers} transfers "
          f"+ {args.backbone} backbone flows"
          + (" (verify on)" if args.verify else ""))
    header = (f"  {'engine':<12} {'wall s':>8} {'events':>8} {'recomp':>8} "
              f"{'touched':>9} {'resched':>9} {'preserv':>8}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    completions = {}
    for mode in modes:
        model = build_flow_churn(
            pairs=args.pairs, transfers_per_pair=args.transfers,
            backbone_flows=args.backbone, incremental=(mode == "incremental"),
            verify=args.verify and mode == "incremental").run()
        s = model.stats()
        print(f"  {mode:<12} {s['wall_seconds']:>8.3f} {s['events']:>8,} "
              f"{s['recomputes']:>8,} {s['flows_touched']:>9,} "
              f"{s['rescheduled']:>9,} {s['preserved']:>8,}")
        completions[mode] = model.completion_times()
    if len(completions) > 1:
        worst = max((abs(a - b) / max(abs(b), 1e-30) for a, b in
                     zip(completions["incremental"], completions["full"])),
                    default=0.0)
        if not all(math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
                   for a, b in zip(completions["incremental"],
                                   completions["full"])):
            print(f"FAIL: completion times diverged between engines "
                  f"(worst relative diff {worst:.3e})", file=sys.stderr)
            return 1
        print(f"  completion times identical across engines "
              f"(worst relative diff {worst:.3e})")
    return 0


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_assignments(entries, split_values: bool) -> dict:
    out = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"error: {entry!r} is not NAME=VALUE")
        name, _, text = entry.partition("=")
        if split_values:
            out[name.strip()] = [_parse_value(v) for v in text.split(",")]
        else:
            out[name.strip()] = _parse_value(text)
    return out


def _cmd_campaign(args) -> int:
    from .campaign import (CampaignSpec, coverage_verdict, parse_space,
                           evolve, run_campaign, theory_for)

    if args.evolve:
        if not args.space:
            print("error: --evolve needs at least one --space axis",
                  file=sys.stderr)
            return 2
        space = parse_space(args.space)
        base = _parse_assignments(args.base, split_values=False)
        res = evolve(args.scenario, space, args.objective, mode=args.mode,
                     population=args.population,
                     generations=args.generations, replications=args.runs,
                     base=base, root_seed=args.seed, workers=args.workers,
                     timeout=args.timeout,
                     progress=lambda line: print(line, file=sys.stderr))
        print(f"evolutionary search: {args.scenario}  objective "
              f"{args.mode} {args.objective!r}")
        for h in res.history:
            print(f"  gen {h['generation']:>3}  best {h['best_fitness']:>10.6g}"
                  f"  mean {h['mean_fitness']:>10.6g}")
        print(res.report())
        return 0

    grid = _parse_assignments(args.grid, split_values=True)
    base = _parse_assignments(args.base, split_values=False)
    spec = CampaignSpec(args.scenario, base=base, grid=grid,
                        replications=args.runs, root_seed=args.seed)
    result = run_campaign(spec, workers=args.workers, timeout=args.timeout,
                          retries=args.retries, heartbeat=args.heartbeat,
                          recorder_dir=args.recorder_dir,
                          progress=lambda line: print(line, file=sys.stderr))
    metrics = args.metrics.split(",") if args.metrics else None
    points = spec.points()
    print(f"campaign: {args.scenario}  {len(points)} point(s) x {args.runs} "
          f"rep(s) = {len(result.records)} runs  "
          f"({result.workers} worker(s), {result.wall_seconds:.2f}s wall, "
          f"{result.n_ok} ok, {result.timeouts} timeouts)")
    for point, summaries in result.point_summaries(metrics,
                                                   args.level).items():
        params = points[point]
        label = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        print(f"  point {point}: {label}")
        theory = theory_for(args.scenario, params)
        verdict = coverage_verdict(summaries, theory) if theory else {}
        for name in sorted(summaries):
            s = summaries[name]
            line = (f"    {name:<14} mean {s.mean:>10.4g}  "
                    f"±{s.halfwidth:<10.3g} "
                    f"[{s.lo:>10.4g}, {s.hi:>10.4g}] n={s.n}")
            if name in verdict:
                line += ("  theory "
                         f"{verdict[name]['theory']:.4g} "
                         + ("ok" if verdict[name]["contains"] else "MISS"))
            print(line)
    for rec in result.failures:
        first_line = (rec.error or "").strip().splitlines()
        print(f"  FAILED run {rec.index} ({rec.status}, "
              f"{rec.attempts} attempts): "
              f"{first_line[-1] if first_line else ''}", file=sys.stderr)
        if rec.recorder_path:
            print(f"    flight recorder: {rec.recorder_path}",
                  file=sys.stderr)
    if args.report and result.telemetry is not None:
        print()
        print(result.telemetry.report())
    if args.prom and result.telemetry is not None:
        with open(args.prom, "w") as fp:
            fp.write(result.telemetry.metrics.prometheus_text())
        print(f"wrote Prometheus metrics: {args.prom}", file=sys.stderr)
    return 0 if result.n_ok == len(result.records) else 1


_COMMANDS = {
    "table1": _cmd_table1,
    "survey": _cmd_survey,
    "coverage": _cmd_coverage,
    "diff": _cmd_diff,
    "validate": _cmd_validate,
    "profile": _cmd_profile,
    "classify": _cmd_classify,
    "executors": _cmd_executors,
    "flows": _cmd_flows,
    "campaign": _cmd_campaign,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
