"""repro — a large-scale distributed systems simulation suite.

A faithful, executable reproduction of *New Trends in Large Scale
Distributed Systems Simulation* (Dobre, Pop, Cristea — ICPP 2009): a
discrete-event kernel exposing every design axis of the paper's simulator
taxonomy, the grid substrates (networks, hosts, middleware, workloads) the
surveyed instruments rely on, re-implementations of all six surveyed
simulators (Bricks, OptorSim, SimGrid, GridSim, ChicagoSim, MONARC 2), the
taxonomy itself as an executable classification framework, and the queueing
theory validation machinery the paper calls for.

Package layout
--------------
``repro.core``
    The DES kernel: engines (event-, time-, trace-driven), event queues,
    processes, resources, RNG streams, monitors, distributed execution.
``repro.network``
    Flow-level and packet-level network models behind one transport API.
``repro.hosts``
    CPUs (time/space-shared), storage, sites and resource organizations.
``repro.middleware``
    Jobs, schedulers, brokers, replica catalogs/strategies, economy layer.
``repro.workloads``
    Arrival processes, task farms, DAGs, file-access patterns, LHC loads.
``repro.simulators``
    The six surveyed simulator designs rebuilt on the common kernel.
``repro.taxonomy``
    The paper's taxonomy: schema, registry, classifier, Table-1 reports.
``repro.validation``
    Analytic queueing models and simulation-vs-theory comparison harness.
"""

from .core import Simulator, TimeDrivenSimulator, TraceDrivenSimulator

__version__ = "1.0.0"

__all__ = ["Simulator", "TimeDrivenSimulator", "TraceDrivenSimulator", "__version__"]
