"""``python -m repro`` — the textual interface (see :mod:`repro.cli`)."""

from .cli import main

raise SystemExit(main())
