"""Analytic queueing models — the paper's prescribed validation formalism.

Section 5: "Another mechanism designed to facilitate the evaluation of the
simulation models consists in the use of queuing theory.  The formalism
provided by the queuing models is important for the definition and
validation of the simulation stochastic models."

Closed forms implemented (standard Kendall notation, arrival rate λ,
service rate μ, c servers, K system capacity):

========================  =====================================================
model                     quantities
========================  =====================================================
:class:`MM1`              L, Lq, W, Wq, utilization, P(N=n), P(W>t)
:class:`MMc`              Erlang-C delay probability, L, Lq, W, Wq
:class:`MM1K`             blocking probability, effective λ, L, W
:class:`MG1`              Pollaczek–Khinchine (needs service mean + variance)
:func:`erlang_b`          M/M/c/c blocking (the circuit formula)
:class:`JacksonNetwork`   open network: per-node effective λ via traffic eqs
========================  =====================================================

Every stable-queue property verifies Little's law internally (``L = λW``),
so a typo in one closed form is caught by the cross-check tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.errors import ValidationError

__all__ = ["MM1", "MMc", "MM1K", "MG1", "erlang_b", "JacksonNetwork"]


def _check_rates(lam: float, mu: float) -> None:
    if lam <= 0 or mu <= 0:
        raise ValidationError(f"rates must be > 0 (λ={lam}, μ={mu})")


class MM1:
    """Single exponential server, infinite queue."""

    def __init__(self, lam: float, mu: float) -> None:
        _check_rates(lam, mu)
        if lam >= mu:
            raise ValidationError(
                f"unstable queue: λ={lam} >= μ={mu} (ρ >= 1)")
        self.lam = lam
        self.mu = mu

    @property
    def rho(self) -> float:
        """Utilization ρ = λ/μ."""
        return self.lam / self.mu

    @property
    def L(self) -> float:
        """Mean number in system."""
        return self.rho / (1 - self.rho)

    @property
    def Lq(self) -> float:
        """Mean queue length (excluding in service)."""
        return self.rho ** 2 / (1 - self.rho)

    @property
    def W(self) -> float:
        """Mean time in system."""
        return 1.0 / (self.mu - self.lam)

    @property
    def Wq(self) -> float:
        """Mean wait before service."""
        return self.rho / (self.mu - self.lam)

    def p_n(self, n: int) -> float:
        """P(exactly n customers in system)."""
        if n < 0:
            raise ValidationError("n must be >= 0")
        return (1 - self.rho) * self.rho ** n

    def p_wait_exceeds(self, t: float) -> float:
        """P(sojourn time > t) — exponential with rate μ-λ."""
        if t < 0:
            raise ValidationError("t must be >= 0")
        return math.exp(-(self.mu - self.lam) * t)


class MMc:
    """c exponential servers, one shared infinite queue (Erlang-C)."""

    def __init__(self, lam: float, mu: float, c: int) -> None:
        _check_rates(lam, mu)
        if c < 1:
            raise ValidationError(f"c must be >= 1, got {c}")
        if lam >= c * mu:
            raise ValidationError(
                f"unstable queue: λ={lam} >= cμ={c * mu}")
        self.lam = lam
        self.mu = mu
        self.c = c

    @property
    def rho(self) -> float:
        """Per-server utilization λ/(cμ)."""
        return self.lam / (self.c * self.mu)

    @property
    def offered_load(self) -> float:
        """a = λ/μ in Erlangs."""
        return self.lam / self.mu

    @property
    def erlang_c(self) -> float:
        """P(arriving customer must wait) — the Erlang-C formula."""
        a, c = self.offered_load, self.c
        # terms[k] = a^k / k!, accumulated to avoid factorial overflow
        terms = [1.0]
        for k in range(1, c):
            terms.append(terms[-1] * a / k)
        tail = terms[-1] * a / c / (1 - self.rho)  # a^c/c! · 1/(1-ρ)
        return tail / (sum(terms) + tail)

    @property
    def Lq(self) -> float:
        """Mean queue length (waiting only)."""
        return self.erlang_c * self.rho / (1 - self.rho)

    @property
    def Wq(self) -> float:
        """Mean wait before service."""
        return self.Lq / self.lam

    @property
    def W(self) -> float:
        """Mean time in system."""
        return self.Wq + 1.0 / self.mu

    @property
    def L(self) -> float:
        """Mean number in system (Little)."""
        return self.lam * self.W


class MM1K:
    """Single server, finite capacity K (arrivals beyond K are lost)."""

    def __init__(self, lam: float, mu: float, K: int) -> None:
        _check_rates(lam, mu)
        if K < 1:
            raise ValidationError(f"K must be >= 1, got {K}")
        self.lam = lam
        self.mu = mu
        self.K = K

    @property
    def rho(self) -> float:
        """Offered load lambda/mu (may exceed 1: losses absorb it)."""
        return self.lam / self.mu

    def p_n(self, n: int) -> float:
        """P(exactly n in system), truncated-geometric."""
        if not 0 <= n <= self.K:
            return 0.0
        r, K = self.rho, self.K
        if abs(r - 1.0) < 1e-12:
            return 1.0 / (K + 1)
        return (1 - r) * r ** n / (1 - r ** (K + 1))

    @property
    def blocking_probability(self) -> float:
        """P(arrival lost) = P(N = K)."""
        return self.p_n(self.K)

    @property
    def effective_lambda(self) -> float:
        """Admitted arrival rate lambda(1 - blocking)."""
        return self.lam * (1 - self.blocking_probability)

    @property
    def L(self) -> float:
        """Mean number in system."""
        r, K = self.rho, self.K
        if abs(r - 1.0) < 1e-12:
            return K / 2.0
        return r * (1 - (K + 1) * r ** K + K * r ** (K + 1)) \
            / ((1 - r) * (1 - r ** (K + 1)))

    @property
    def W(self) -> float:
        """Mean time in system for *admitted* customers."""
        return self.L / self.effective_lambda


class MG1:
    """Single exponential-arrival server, general service (P-K formula)."""

    def __init__(self, lam: float, service_mean: float, service_var: float) -> None:
        if lam <= 0 or service_mean <= 0 or service_var < 0:
            raise ValidationError("need λ>0, E[S]>0, Var[S]>=0")
        if lam * service_mean >= 1.0:
            raise ValidationError(
                f"unstable queue: ρ = {lam * service_mean} >= 1")
        self.lam = lam
        self.es = service_mean
        self.vs = service_var

    @property
    def rho(self) -> float:
        """Utilization lambda * E[S]."""
        return self.lam * self.es

    @property
    def cs2(self) -> float:
        """Squared coefficient of variation of service."""
        return self.vs / (self.es ** 2)

    @property
    def Lq(self) -> float:
        """Pollaczek–Khinchine mean queue length."""
        return self.rho ** 2 * (1 + self.cs2) / (2 * (1 - self.rho))

    @property
    def Wq(self) -> float:
        """Mean wait before service (P-K)."""
        return self.Lq / self.lam

    @property
    def W(self) -> float:
        """Mean time in system."""
        return self.Wq + self.es

    @property
    def L(self) -> float:
        """Mean number in system (Little)."""
        return self.lam * self.W


def erlang_b(offered_load: float, c: int) -> float:
    """M/M/c/c blocking probability via the stable recurrence."""
    if offered_load <= 0 or c < 1:
        raise ValidationError("need offered_load > 0 and c >= 1")
    b = 1.0
    for k in range(1, c + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


class JacksonNetwork:
    """Open Jackson network: M nodes, exponential servers, Markov routing.

    Node i receives external Poisson arrivals ``gamma[i]`` and routes a
    completed customer to node j with probability ``P[i][j]`` (leaving with
    the remainder).  Effective rates solve λ = γ + Pᵀλ; each node then
    behaves as an independent M/M/c.
    """

    def __init__(self, gamma: Sequence[float], mu: Sequence[float],
                 routing: Sequence[Sequence[float]],
                 servers: Sequence[int] | None = None) -> None:
        g = np.asarray(gamma, dtype=float)
        m = np.asarray(mu, dtype=float)
        P = np.asarray(routing, dtype=float)
        n = len(g)
        if m.shape != (n,) or P.shape != (n, n):
            raise ValidationError("gamma, mu, routing dimensions disagree")
        if (g < 0).any() or g.sum() <= 0:
            raise ValidationError("external arrivals must be >= 0, with some > 0")
        if (m <= 0).any():
            raise ValidationError("service rates must be > 0")
        if (P < 0).any() or (P.sum(axis=1) > 1 + 1e-12).any():
            raise ValidationError("routing rows must be substochastic")
        self.gamma = g
        self.mu = m
        self.P = P
        self.servers = np.ones(n, dtype=int) if servers is None \
            else np.asarray(servers, dtype=int)
        if (self.servers < 1).any():
            raise ValidationError("server counts must be >= 1")
        # Traffic equations: λ = γ + Pᵀ λ  =>  (I - Pᵀ) λ = γ
        try:
            self.lam = np.linalg.solve(np.eye(n) - P.T, g)
        except np.linalg.LinAlgError as exc:  # pragma: no cover
            raise ValidationError(f"singular routing matrix: {exc}") from exc
        if (self.lam >= self.servers * m - 1e-12).any():
            bad = int(np.argmax(self.lam - self.servers * m))
            raise ValidationError(
                f"node {bad} unstable: λ={self.lam[bad]:.4g} >= "
                f"cμ={self.servers[bad] * m[bad]:.4g}")

    def node(self, i: int) -> MM1 | MMc:
        """The isolated analytic model of node *i*."""
        if self.servers[i] == 1:
            return MM1(float(self.lam[i]), float(self.mu[i]))
        return MMc(float(self.lam[i]), float(self.mu[i]), int(self.servers[i]))

    @property
    def L_total(self) -> float:
        """Mean customers in the whole network."""
        return float(sum(self.node(i).L for i in range(len(self.gamma))))

    @property
    def W_total(self) -> float:
        """Mean end-to-end sojourn (Little on the whole network)."""
        return self.L_total / float(self.gamma.sum())
