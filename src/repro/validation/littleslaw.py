"""Little's-law and conservation checkers usable on any instrumented model.

Little's law (L = λW) holds for *any* stable queueing system regardless of
distributions or discipline, which makes it the cheapest possible sanity
check on a simulation's bookkeeping: if measured L, λ, and W disagree, the
model (or the statistics) is wrong — no analytic solution of the whole
model needed.  The paper's validation trend (Section 5) is exactly about
giving users such self-checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ValidationError

__all__ = ["LittleCheck", "check_littles_law", "check_flow_conservation"]


@dataclass(frozen=True, slots=True)
class LittleCheck:
    """Outcome of one Little's-law test."""

    L: float
    lam: float
    W: float
    rel_error: float
    passed: bool

    def __str__(self) -> str:  # pragma: no cover
        verdict = "OK" if self.passed else "VIOLATION"
        return (f"Little's law {verdict}: L={self.L:.4g} vs λW="
                f"{self.lam * self.W:.4g} (rel err {self.rel_error:.2%})")


def check_littles_law(L: float, lam: float, W: float,
                      tolerance: float = 0.05) -> LittleCheck:
    """Compare measured L against λ·W.

    Parameters are the *measured* time-average number in system, arrival
    rate, and mean sojourn; tolerance is the accepted relative error
    (finite runs carry end effects, so 0 is unachievable).
    """
    if tolerance <= 0:
        raise ValidationError("tolerance must be > 0")
    if lam < 0 or W < 0 or L < 0:
        raise ValidationError("L, λ, W must be >= 0")
    predicted = lam * W
    if predicted == 0 and L == 0:
        return LittleCheck(L, lam, W, 0.0, True)
    denom = max(abs(predicted), abs(L), 1e-300)
    rel = abs(L - predicted) / denom
    return LittleCheck(L, lam, W, rel, rel <= tolerance)


def check_flow_conservation(arrived: int, departed: int, in_system: int,
                            initial: int = 0) -> bool:
    """Customers are conserved: arrived + initial == departed + in_system.

    Raises :class:`ValidationError` (with the imbalance) on violation so
    test suites get a diagnostic, not just ``False``.
    """
    if min(arrived, departed, in_system, initial) < 0:
        raise ValidationError("counts must be >= 0")
    lhs = arrived + initial
    rhs = departed + in_system
    if lhs != rhs:
        raise ValidationError(
            f"flow imbalance: arrived({arrived}) + initial({initial}) != "
            f"departed({departed}) + in_system({in_system}) [Δ={lhs - rhs}]")
    return True


def effective_rate(count: int, span: float) -> float:
    """Events per unit time with guard rails (span must be positive)."""
    if span <= 0:
        raise ValidationError(f"span must be > 0, got {span}")
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    return count / span
