"""Simulation-vs-theory comparison harness.

The executable form of the paper's validation demand: build the queueing
system in the simulator, run it, and compare every measured statistic
against the closed form, reporting relative errors and CI coverage.

:func:`simulate_mm1` / :func:`simulate_mmc` / :func:`simulate_mg1` build
the queue from kernel primitives (:class:`~repro.core.resources.Resource`
carries its own L/W instrumentation, so these functions *also* validate the
resource layer, not a bespoke queue implementation).  :func:`compare`
reduces a run + model into a :class:`ValidationReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..core.engine import Simulator
from ..core.errors import ValidationError
from ..core.monitor import Monitor
from ..core.process import Process
from ..core.resources import Resource
from .queueing import MG1, MM1, MMc

__all__ = ["QueueRunStats", "ValidationReport", "simulate_mm1", "simulate_mmc",
           "simulate_mg1", "compare"]


@dataclass(slots=True)
class QueueRunStats:
    """Measured steady-state statistics of one queueing run."""

    completed: int
    L: float
    Lq: float
    W: float
    Wq: float
    utilization: float
    W_ci_halfwidth: float
    #: per-job sojourn times in completion order (kept only when the run was
    #: asked for them via ``keep_series=True``) — the raw material for
    #: MSER-5 warm-up truncation in :mod:`repro.campaign.stats`
    W_series: tuple = ()

    def to_dict(self) -> dict[str, float]:
        """Scalar statistics as a plain picklable dict (series excluded)."""
        return {"completed": int(self.completed), "L": float(self.L),
                "Lq": float(self.Lq), "W": float(self.W),
                "Wq": float(self.Wq),
                "utilization": float(self.utilization),
                "W_ci_halfwidth": float(self.W_ci_halfwidth)}


@dataclass(slots=True)
class ValidationReport:
    """Analytic vs measured, with relative errors."""

    model: str
    analytic: dict[str, float]
    measured: dict[str, float]
    rel_errors: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for k, a in self.analytic.items():
            m = self.measured.get(k, math.nan)
            self.rel_errors[k] = abs(m - a) / abs(a) if a else math.nan

    @property
    def max_rel_error(self) -> float:
        """Worst relative error across all compared quantities."""
        return max(self.rel_errors.values())

    def to_rows(self) -> list[tuple[str, float, float, float]]:
        """(quantity, analytic, measured, rel_error) rows for reporting."""
        return [(k, self.analytic[k], self.measured.get(k, math.nan),
                 self.rel_errors[k]) for k in sorted(self.analytic)]


def _run_queue(sim: Simulator, servers: int, arrival_gap: Callable[[], float],
               service_time: Callable[[], float], n_jobs: int,
               warmup: int, keep_series: bool = False) -> QueueRunStats:
    """Drive n_jobs through a `servers`-capacity FIFO station; measure."""
    if n_jobs <= warmup:
        raise ValidationError("n_jobs must exceed warmup")
    station = Resource(sim, capacity=servers, name="station")
    mon = Monitor("queue-run")
    in_system = mon.level("L", start_time=sim.now)
    wall = mon.tally("W")
    wait = mon.tally("Wq")
    done = [0]

    def customer(i: int):
        arrived = sim.now
        in_system.add(sim.now, +1)
        req = yield station.request()
        waited = sim.now - arrived
        yield service_time()
        station.release(req)
        in_system.add(sim.now, -1)
        done[0] += 1
        if i >= warmup:
            wall.record(sim.now - arrived)
            wait.record(waited)

    def source():
        for i in range(n_jobs):
            Process(sim, customer, i, name=f"cust-{i}")
            yield arrival_gap()

    Process(sim, source, name="source")
    sim.run()
    t_end = sim.now
    lam_hat = wall.count / t_end * (n_jobs / max(n_jobs - warmup, 1))
    w_mean, w_half = wall.batch_means(10)
    return QueueRunStats(
        completed=done[0],
        L=in_system.mean(t_end),
        Lq=station.monitor.levels["queue_length"].mean(t_end),
        W=w_mean,
        Wq=wait.mean,
        utilization=station.utilization(t_end),
        W_ci_halfwidth=w_half,
        W_series=tuple(float(x) for x in wall.samples) if keep_series else (),
    )


def simulate_mm1(lam: float, mu: float, n_jobs: int = 20_000,
                 warmup: int = 2_000, seed: int = 0, obs=None,
                 keep_series: bool = False) -> QueueRunStats:
    """M/M/1 built from kernel primitives.

    Pass an :class:`repro.obs.Observation` as *obs* to trace/profile the
    run (the simulator is created internally, so this is the attach point).
    """
    sim = Simulator(seed=seed)
    if obs is not None:
        obs.attach(sim, track="mm1")
    arr = sim.stream("arrivals")
    svc = sim.stream("service")
    return _run_queue(sim, 1, lambda: arr.exponential(1 / lam),
                      lambda: svc.exponential(1 / mu), n_jobs, warmup,
                      keep_series=keep_series)


def simulate_mmc(lam: float, mu: float, c: int, n_jobs: int = 20_000,
                 warmup: int = 2_000, seed: int = 0, obs=None,
                 keep_series: bool = False) -> QueueRunStats:
    """M/M/c built from kernel primitives."""
    sim = Simulator(seed=seed)
    if obs is not None:
        obs.attach(sim, track=f"mm{c}")
    arr = sim.stream("arrivals")
    svc = sim.stream("service")
    return _run_queue(sim, c, lambda: arr.exponential(1 / lam),
                      lambda: svc.exponential(1 / mu), n_jobs, warmup,
                      keep_series=keep_series)


def simulate_mg1(lam: float, service: Callable[[], float], n_jobs: int = 20_000,
                 warmup: int = 2_000, seed: int = 0, obs=None,
                 keep_series: bool = False) -> QueueRunStats:
    """M/G/1 with an arbitrary service-time sampler."""
    sim = Simulator(seed=seed)
    if obs is not None:
        obs.attach(sim, track="mg1")
    arr = sim.stream("arrivals")
    return _run_queue(sim, 1, lambda: arr.exponential(1 / lam),
                      service, n_jobs, warmup, keep_series=keep_series)


def compare(model: MM1 | MMc | MG1, stats: QueueRunStats) -> ValidationReport:
    """Reduce one (closed form, measured run) pair into a report."""
    analytic = {"L": model.L, "Lq": model.Lq, "W": model.W, "Wq": model.Wq}
    if isinstance(model, (MM1, MMc)):
        analytic["utilization"] = model.rho
    measured = {"L": stats.L, "Lq": stats.Lq, "W": stats.W, "Wq": stats.Wq,
                "utilization": stats.utilization}
    measured = {k: v for k, v in measured.items() if k in analytic}
    return ValidationReport(type(model).__name__, analytic, measured)
