"""Validation: analytic queueing models + simulation comparison harness.

The paper's Section-5 prescription made executable: closed-form M/M/1,
M/M/c, M/M/1/K, M/G/1, Erlang-B, and Jackson networks
(:mod:`~repro.validation.queueing`); kernel-built simulations of the same
systems with error reports (:mod:`~repro.validation.compare`); and
model-free Little's-law checks (:mod:`~repro.validation.littleslaw`).
"""

from .compare import (
    QueueRunStats,
    ValidationReport,
    compare,
    simulate_mg1,
    simulate_mm1,
    simulate_mmc,
)
from .littleslaw import LittleCheck, check_flow_conservation, check_littles_law, effective_rate
from .queueing import MG1, MM1, MM1K, MMc, JacksonNetwork, erlang_b

__all__ = [
    "MM1",
    "MMc",
    "MM1K",
    "MG1",
    "erlang_b",
    "JacksonNetwork",
    "simulate_mm1",
    "simulate_mmc",
    "simulate_mg1",
    "compare",
    "QueueRunStats",
    "ValidationReport",
    "LittleCheck",
    "check_littles_law",
    "check_flow_conservation",
    "effective_rate",
]
