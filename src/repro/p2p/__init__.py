"""P2P substrate: overlays (structured + unstructured) and churn.

Fills the taxonomy's P2P corner of the *systems modeled* axis: a
Chord-style identifier ring with O(log N) finger routing, a Gnutella-style
random graph with flooding / random-walk search, and a heavy-tailed churn
process that drives either.  Benchmark E13 contrasts the two search
disciplines' hop and message costs — the P2P analogue of the paper's
parameter-space-exploration conclusion.
"""

from .churn import ChurnProcess
from .overlay import ChordRing, LookupResult, UnstructuredOverlay, node_id

__all__ = [
    "ChordRing",
    "UnstructuredOverlay",
    "LookupResult",
    "node_id",
    "ChurnProcess",
]
