"""Churn: the arrival/departure dynamics that define P2P workloads.

What separates P2P simulation from Grid simulation (taxonomy *scope* axis)
is membership volatility: peers join and leave continuously, and protocols
are judged by how they behave *under* that motion.  :class:`ChurnProcess`
drives any overlay exposing ``join(name)`` / ``leave(name)``:

* session lengths are heavy-tailed by default (Pareto — the empirical
  Gnutella/Kad finding) or exponential;
* a target population is maintained: departures trigger compensating
  arrivals after an exponential gap, so long runs neither drain nor
  explode.
"""

from __future__ import annotations

from typing import Protocol

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.rng import Stream

__all__ = ["OverlayLike", "ChurnProcess"]


class OverlayLike(Protocol):
    """Anything a churn process can drive."""

    def join(self, name: str) -> object: ...  # pragma: no cover

    def leave(self, name: str) -> bool: ...  # pragma: no cover


class ChurnProcess:
    """Maintains a churning population on an overlay.

    Parameters
    ----------
    target_population:
        Nodes to create initially and maintain on average.
    mean_session:
        Mean node lifetime between join and leave.
    mean_rejoin_gap:
        Mean delay between a departure and the compensating arrival.
    session_model:
        ``"pareto"`` (heavy-tailed, alpha=1.5 scaled to the mean) or
        ``"exponential"``.
    horizon:
        Stop generating churn events after this time (keeps runs finite).
    """

    def __init__(self, sim: Simulator, overlay: OverlayLike, stream: Stream,
                 target_population: int = 50, mean_session: float = 300.0,
                 mean_rejoin_gap: float = 30.0, session_model: str = "pareto",
                 horizon: float = 3_600.0) -> None:
        if target_population < 1:
            raise ConfigurationError("target_population must be >= 1")
        if mean_session <= 0 or mean_rejoin_gap <= 0 or horizon <= 0:
            raise ConfigurationError("times must be > 0")
        if session_model not in ("pareto", "exponential"):
            raise ConfigurationError(f"unknown session model {session_model!r}")
        self.sim = sim
        self.overlay = overlay
        self.stream = stream
        self.mean_session = mean_session
        self.mean_rejoin_gap = mean_rejoin_gap
        self.session_model = session_model
        self.horizon = horizon
        self.monitor = Monitor("churn")
        self._seq = 0
        self.alive: set[str] = set()
        for _ in range(target_population):
            self._spawn()

    def _session_length(self) -> float:
        if self.session_model == "exponential":
            return self.stream.exponential(self.mean_session)
        # Pareto(1.5) scaled so the mean matches: mean = a*xmin/(a-1)
        alpha = 1.5
        xmin = self.mean_session * (alpha - 1) / alpha
        return self.stream.pareto(alpha, xmin=xmin)

    def _spawn(self) -> str:
        self._seq += 1
        name = f"peer-{self._seq:05d}"
        self.overlay.join(name)
        self.alive.add(name)
        self.monitor.counter("joins").increment(self.sim.now)
        if self.sim.now < self.horizon:
            self.sim.schedule(self._session_length(), self._depart, name,
                              label="churn_leave")
        return name

    def _depart(self, name: str) -> None:
        if name not in self.alive:
            return
        if self.sim.now >= self.horizon:
            # churn is frozen past the horizon: keep the final population
            # intact so post-churn measurements see a steady overlay
            return
        self.overlay.leave(name)
        self.alive.discard(name)
        self.monitor.counter("leaves").increment(self.sim.now)
        if self.sim.now < self.horizon:
            self.sim.schedule(self.stream.exponential(self.mean_rejoin_gap),
                              self._replace, label="churn_join")

    def _replace(self) -> None:
        if self.sim.now < self.horizon:
            self._spawn()

    @property
    def population(self) -> int:
        """Currently live peers."""
        return len(self.alive)

    def random_member(self) -> str:
        """A uniformly random live peer (for query origination)."""
        if not self.alive:
            raise ConfigurationError("population is empty")
        return self.stream.choice(sorted(self.alive))
