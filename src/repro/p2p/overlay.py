"""P2P overlays: structured (Chord-style) and unstructured (Gnutella-style).

The taxonomy's *scope* axis lists "P2P networks" among the system kinds a
large-scale distributed systems simulator must express, and the paper
groups "Grid and/or P2P simulation instruments" as one family; GridSim
explicitly claims "clusters, Grids, and P2P networks".  This subpackage
provides the P2P substrate in that family's style:

* :class:`ChordRing` — a structured overlay on a 2^m identifier circle
  with successor lists and finger tables; greedy finger routing resolves a
  key in O(log N) hops (the property benchmark E13 measures).
* :class:`UnstructuredOverlay` — a random graph where queries *flood* with
  a TTL or take bounded random walks; coverage and duplicate-message cost
  are the classic contrast with structured routing.

Both are *models over the DES kernel*: `lookup`/`search` run as simulated
message exchanges with per-hop latency, so overlay behaviour composes with
everything else (churn processes interrupt them mid-flight).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..core.process import Waitable
from ..core.rng import Stream

__all__ = ["node_id", "ChordRing", "UnstructuredOverlay", "LookupResult"]


def node_id(name: str, bits: int) -> int:
    """Stable identifier on the 2^bits circle (SHA-1, truncated)."""
    if bits < 1 or bits > 160:
        raise ConfigurationError(f"bits must be in [1,160], got {bits}")
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


class LookupResult(Waitable):
    """Completes when a lookup/search resolves (or gives up)."""

    def __init__(self, key: int, started: float) -> None:
        super().__init__()
        self.key = key
        self.started = started
        self.finished: Optional[float] = None
        self.hops = 0
        self.messages = 0
        self.owner: Optional[str] = None
        self.found = False

    @property
    def latency(self) -> float:
        """Query start-to-resolution time (NaN in flight)."""
        return (self.finished - self.started) if self.finished is not None else float("nan")


class ChordRing:
    """Chord-style structured overlay (identifier circle + finger tables).

    Membership is maintained eagerly (joins/leaves rebuild the affected
    pointers immediately rather than via periodic stabilization) — the
    standard simplification when the object of study is *routing*, not the
    stabilization protocol itself.  A lookup is simulated hop by hop with
    ``hop_latency`` per message.

    Parameters
    ----------
    bits:
        Identifier-space size (2^bits points on the circle).
    hop_latency:
        Simulated one-way message latency per routing hop.
    """

    def __init__(self, sim: Simulator, bits: int = 16,
                 hop_latency: float = 0.05) -> None:
        if hop_latency <= 0:
            raise ConfigurationError("hop_latency must be > 0")
        self.sim = sim
        self.bits = bits
        self.space = 1 << bits
        self.hop_latency = hop_latency
        self._members: dict[int, str] = {}   # id -> name
        self._ring: list[int] = []           # sorted member ids
        self._fingers: dict[int, list[int]] = {}
        self.monitor = Monitor("chord")

    # -- membership ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current member count."""
        return len(self._ring)

    @property
    def members(self) -> list[str]:
        """Member names in ring-identifier order."""
        return [self._members[i] for i in self._ring]

    def join(self, name: str) -> int:
        """Add a node; returns its ring identifier."""
        nid = node_id(name, self.bits)
        while nid in self._members:  # improbable collision: probe linearly
            nid = (nid + 1) % self.space
        self._members[nid] = name
        self._insert_sorted(nid)
        self._rebuild_fingers()
        self.monitor.counter("joins").increment(self.sim.now)
        return nid

    def leave(self, name: str) -> bool:
        """Remove a node (graceful or crash — routing state is rebuilt)."""
        nid = self._find_by_name(name)
        if nid is None:
            return False
        del self._members[nid]
        self._ring.remove(nid)
        self._fingers.pop(nid, None)
        self._rebuild_fingers()
        self.monitor.counter("leaves").increment(self.sim.now)
        return True

    def _find_by_name(self, name: str) -> Optional[int]:
        for nid, n in self._members.items():
            if n == name:
                return nid
        return None

    def _insert_sorted(self, nid: int) -> None:
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid] < nid:
                lo = mid + 1
            else:
                hi = mid
        self._ring.insert(lo, nid)

    def _rebuild_fingers(self) -> None:
        self._fingers = {nid: [self.successor((nid + (1 << k)) % self.space)
                               for k in range(self.bits)]
                         for nid in self._ring}

    # -- routing ----------------------------------------------------------------

    def successor(self, key: int) -> int:
        """The first member id clockwise from *key* (inclusive)."""
        if not self._ring:
            raise ConfigurationError("empty ring")
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return self._ring[lo % len(self._ring)]

    def owner_of(self, key: int) -> str:
        """Name of the node responsible for *key* (oracle, zero cost)."""
        return self._members[self.successor(key % self.space)]

    @staticmethod
    def _in_open_interval(x: int, a: int, b: int, space: int) -> bool:
        """x in (a, b) on the circle."""
        if a == b:
            return x != a
        if a < b:
            return a < x < b
        return x > a or x < b

    def _closest_preceding(self, nid: int, key: int) -> int:
        for f in reversed(self._fingers.get(nid, [])):
            if f in self._members and self._in_open_interval(f, nid, key, self.space):
                return f
        return nid

    def lookup(self, from_name: str, key: int) -> LookupResult:
        """Resolve *key* starting at *from_name*, one simulated hop at a time."""
        start = self._find_by_name(from_name)
        if start is None:
            raise ConfigurationError(f"unknown node {from_name!r}")
        result = LookupResult(key % self.space, self.sim.now)
        self._route_step(start, key % self.space, result,
                         budget=2 * self.bits + len(self._ring))
        return result

    def _route_step(self, nid: int, key: int, result: LookupResult,
                    budget: int) -> None:
        if nid not in self._members:
            # Node departed mid-lookup (churn): restart from its successor.
            if not self._ring:
                self._finish(result, None)
                return
            nid = self.successor(key)
        succ = self.successor((nid + 1) % self.space)
        if self._in_open_interval(key, nid, succ, self.space) or key == succ:
            # succ is responsible for key
            result.hops += 1
            result.messages += 1
            self.sim.schedule(self.hop_latency, self._finish, result, succ,
                              label="chord_resolve")
            return
        if budget <= 0:  # pathological churn: give up
            self._finish(result, None)
            return
        nxt = self._closest_preceding(nid, key)
        if nxt == nid:
            nxt = succ
        result.hops += 1
        result.messages += 1
        self.sim.schedule(self.hop_latency, self._route_step, nxt, key,
                          result, budget - 1, label="chord_hop")

    def _finish(self, result: LookupResult, owner_id: Optional[int]) -> None:
        result.finished = self.sim.now
        if owner_id is not None and owner_id in self._members:
            result.owner = self._members[owner_id]
            result.found = True
        self.monitor.tally("lookup_hops").record(result.hops)
        self.monitor.tally("lookup_latency").record(result.latency)
        result._complete(result)


class UnstructuredOverlay:
    """Random-graph overlay with flooding and random-walk search.

    Nodes hold named items; :meth:`flood_search` forwards a query to all
    neighbours up to a TTL (counting duplicate deliveries — the protocol's
    cost); :meth:`walk_search` sends k independent bounded random walks.
    """

    def __init__(self, sim: Simulator, stream: Stream, degree: int = 4,
                 hop_latency: float = 0.05) -> None:
        if degree < 1:
            raise ConfigurationError("degree must be >= 1")
        if hop_latency <= 0:
            raise ConfigurationError("hop_latency must be > 0")
        self.sim = sim
        self.stream = stream
        self.degree = degree
        self.hop_latency = hop_latency
        self._neighbours: dict[str, set[str]] = {}
        self._items: dict[str, set[str]] = {}
        self.monitor = Monitor("unstructured")

    # -- membership ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current node count."""
        return len(self._neighbours)

    def join(self, name: str) -> None:
        """Attach to ``degree`` random existing nodes (or fewer early on)."""
        if name in self._neighbours:
            raise ConfigurationError(f"duplicate node {name!r}")
        peers = list(self._neighbours)
        self._neighbours[name] = set()
        self._items.setdefault(name, set())
        targets = (self.stream.shuffle(peers)[: self.degree] if peers else [])
        for t in targets:
            self._neighbours[name].add(t)
            self._neighbours[t].add(name)

    def leave(self, name: str) -> bool:
        if name not in self._neighbours:
            return False
        for peer in self._neighbours.pop(name):
            self._neighbours[peer].discard(name)
        self._items.pop(name, None)
        return True

    def place_item(self, item: str, node: str) -> None:
        """Store *item* on *node* (searches can then find it)."""
        if node not in self._neighbours:
            raise ConfigurationError(f"unknown node {node!r}")
        self._items[node].add(item)

    def neighbours(self, name: str) -> set[str]:
        """A node's current neighbour set (copy)."""
        return set(self._neighbours.get(name, ()))

    # -- search ---------------------------------------------------------------------

    def flood_search(self, from_node: str, item: str, ttl: int = 4) -> LookupResult:
        """BFS flood with TTL; counts every message including duplicates."""
        if from_node not in self._neighbours:
            raise ConfigurationError(f"unknown node {from_node!r}")
        if ttl < 0:
            raise ConfigurationError("ttl must be >= 0")
        result = LookupResult(0, self.sim.now)
        seen = {from_node}
        self._flood_round(result, {from_node}, seen, item, ttl)
        return result

    def _flood_round(self, result: LookupResult, frontier: set[str],
                     seen: set[str], item: str, ttl: int) -> None:
        hits = [n for n in frontier if item in self._items.get(n, ())]
        if hits:
            result.found = True
            result.owner = sorted(hits)[0]
            self._finish(result, "flood")
            return
        if ttl == 0 or not frontier:
            self._finish(result, "flood")
            return
        nxt: set[str] = set()
        for n in sorted(frontier):
            for peer in self._neighbours.get(n, ()):
                result.messages += 1  # duplicates counted: flooding's cost
                if peer not in seen:
                    nxt.add(peer)
                    seen.add(peer)
        result.hops += 1
        self.sim.schedule(self.hop_latency, self._flood_round, result, nxt,
                          seen, item, ttl - 1, label="flood_round")

    def walk_search(self, from_node: str, item: str, walkers: int = 4,
                    max_steps: int = 32) -> LookupResult:
        """k independent random walks of bounded length."""
        if from_node not in self._neighbours:
            raise ConfigurationError(f"unknown node {from_node!r}")
        if walkers < 1 or max_steps < 1:
            raise ConfigurationError("walkers and max_steps must be >= 1")
        result = LookupResult(0, self.sim.now)
        result._active_walkers = walkers  # type: ignore[attr-defined]
        for _ in range(walkers):
            self._walk_step(result, from_node, item, max_steps)
        return result

    def _walk_step(self, result: LookupResult, node: str, item: str,
                   steps_left: int) -> None:
        if result.done:
            return
        if item in self._items.get(node, ()):
            result.found = True
            result.owner = node
            self._finish(result, "walk")
            return
        if steps_left == 0 or not self._neighbours.get(node):
            result._active_walkers -= 1  # type: ignore[attr-defined]
            if result._active_walkers == 0:  # type: ignore[attr-defined]
                self._finish(result, "walk")
            return
        nxt = self.stream.choice(sorted(self._neighbours[node]))
        result.messages += 1
        result.hops += 1
        self.sim.schedule(self.hop_latency, self._walk_step, result, nxt,
                          item, steps_left - 1, label="walk_step")

    def _finish(self, result: LookupResult, kind: str) -> None:
        if result.done:
            return
        result.finished = self.sim.now
        self.monitor.tally(f"{kind}_messages").record(result.messages)
        self.monitor.counter(f"{kind}_{'hit' if result.found else 'miss'}") \
            .increment(self.sim.now)
        result._complete(result)
