"""Flight recorder — a bounded ring of the last N fired events.

When a campaign run is terminated for exceeding its timeout, the process
dies with everything an operator would want to know: where was it?  Which
handler was it grinding through?  Was the event list exploding?  The
recorder answers that post mortem: each observed firing appends one tuple
(track, sim time, callback, queue depth) to a fixed-size ring, and
:meth:`FlightRecorder.dump` writes the ring — newest last — as JSONL.

Hot-path cost is one ``deque.append`` of a 4-tuple; the callback's display
name is resolved lazily at dump time, never per firing.

Worker integration (:mod:`repro.campaign.runner`) uses the module-level
*armed post-mortem*: :func:`arm_postmortem` names the recorder and dump
path for the run in flight, and :func:`install_term_handler` installs a
``SIGTERM`` handler that dumps it before the process dies — so every
``terminate()`` the campaign parent issues leaves an artifact explaining
where the run was stuck.  Runs that die too hard for a handler (``SIGKILL``,
``os._exit``) are covered by the periodic partial dumps the worker writes
on each telemetry heartbeat.
"""

from __future__ import annotations

import json
import os
import signal
from collections import deque
from typing import Any, Optional

from .spans import callback_name

__all__ = ["FlightRecorder", "arm_postmortem", "disarm_postmortem",
           "dump_postmortem", "install_term_handler"]


class FlightRecorder:
    """Bounded ring buffer of the last *capacity* fired events."""

    __slots__ = ("ring", "capacity")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ring: deque = deque(maxlen=self.capacity)

    # -- hot path ------------------------------------------------------------

    def record(self, track: str, sim_time: float, fn: Any,
               queue_depth: int) -> None:
        """Append one firing (called from ``ObsBinding.end_fire``)."""
        self.ring.append((track, sim_time, fn, queue_depth))

    # -- post-mortem ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ring)

    def __bool__(self) -> bool:
        # An attached-but-empty recorder is still "on" (facet truthiness).
        return True

    def snapshot(self) -> list[dict]:
        """The ring as plain dicts, oldest first (names resolved now)."""
        return [{"track": track, "sim_time": sim_time,
                 "handler": callback_name(fn), "queue_depth": depth}
                for track, sim_time, fn, depth in self.ring]

    def last_handler(self) -> Optional[str]:
        """Display name of the most recent firing (None when empty)."""
        if not self.ring:
            return None
        return callback_name(self.ring[-1][2])

    def dump(self, path: str, reason: str,
             extra: dict | None = None) -> str:
        """Write the ring as JSONL: one header line, then one event per
        line (oldest first).  Overwrites *path*; returns it."""
        entries = self.snapshot()
        header = {"record": "flight-recorder", "reason": reason,
                  "events": len(entries), "capacity": self.capacity,
                  "last_handler": entries[-1]["handler"] if entries else None}
        if extra:
            header.update(extra)
        with open(path, "w") as fp:
            fp.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in entries:
                fp.write(json.dumps(entry, sort_keys=True) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlightRecorder {len(self.ring)}/{self.capacity}>"


# -- armed post-mortem (one per process; campaign workers are single-run) ----

_ARMED: tuple[FlightRecorder, str, dict] | None = None


def arm_postmortem(recorder: FlightRecorder, path: str,
                   extra: dict | None = None) -> None:
    """Declare *recorder* the one to dump to *path* if this process is
    asked to die (see :func:`install_term_handler`)."""
    global _ARMED
    _ARMED = (recorder, path, dict(extra or {}))


def disarm_postmortem() -> None:
    """Clear the armed post-mortem (the run finished on its own)."""
    global _ARMED
    _ARMED = None


def dump_postmortem(reason: str) -> Optional[str]:
    """Dump the armed recorder now (no-op when nothing is armed)."""
    if _ARMED is None:
        return None
    recorder, path, extra = _ARMED
    try:
        return recorder.dump(path, reason, extra)
    except OSError:  # pragma: no cover - dump path vanished mid-flight
        return None


def _on_term(signum, frame):  # pragma: no cover - runs in dying workers
    dump_postmortem("terminated")
    # Re-raise the default disposition so the exit code stays truthful.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def install_term_handler() -> bool:
    """Install the SIGTERM → dump-armed-postmortem handler.

    Returns False (and installs nothing) off the main thread or on
    platforms without SIGTERM delivery semantics.
    """
    try:
        signal.signal(signal.SIGTERM, _on_term)
        return True
    except (ValueError, OSError):  # not the main thread / unsupported
        return False
