"""The observation session: one object wiring tracer/profiler/telemetry.

Usage::

    from repro.obs import Observation

    obs = Observation(trace=True, profile=True, heartbeat=2.0)
    obs.attach(sim)                       # or obs.attach_lps(lps)
    sim.run()
    obs.export_chrome("out.json")         # Perfetto-loadable
    print(obs.profile_table())            # markdown hot spots
    print(obs.telemetry.snapshot(sim))

Mechanics
---------
:meth:`attach` installs an :class:`ObsBinding` as ``sim._obs``.  The kernel
treats that attribute as a null object: when it is ``None`` (the default)
the engine's fast dispatch loop runs untouched and scheduling pays exactly
one attribute check; when set, the engine switches to an instrumented loop
that stamps ``perf_counter_ns`` around every firing and maintains the
*current firing span* that gives scheduled children their causal parent.

One :class:`Observation` may observe many simulators (the distributed
executors run one per logical process) — each gets its own binding/track,
while the tracer, profiler, and telemetry aggregate across all of them.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Optional

from ..core.queues import AdaptiveQueue
from .export import (chrome_trace, metrics_csv, profile_markdown,
                     write_chrome_trace)
from .metrics import POW2_BUCKET_MAX_EXP, Registry
from .profiler import HandlerProfiler
from .recorder import FlightRecorder
from .spans import EventSpan
from .telemetry import Telemetry
from .tracer import Tracer

__all__ = ["Observation", "ObsBinding"]


class ObsBinding:
    """Per-simulator instrumentation hub (stored as ``sim._obs``).

    The engine and the instrumented layers (processes, transfers, LPs) call
    these methods only when the binding exists, so every method may assume
    observation is on; each individually tolerates its facet (tracer,
    profiler, telemetry) being disabled.
    """

    __slots__ = ("obs", "sim", "track", "tracer", "profiler", "telemetry",
                 "metrics", "recorder", "current",
                 "_m_sched", "_m_fired", "_m_handler_ns", "_m_rollbacks",
                 "_m_rolled_back", "_m_reallocs", "_m_migrations",
                 "_m_gvt", "_m_gvt_rounds",
                 "_m_flow_aborts", "_m_transfer_retries")

    def __init__(self, obs: "Observation", sim: Any, track: str) -> None:
        self.obs = obs
        self.sim = sim
        self.track = track
        self.tracer = obs.tracer
        self.profiler = obs.profiler
        self.telemetry = obs.telemetry
        self.metrics = obs.metrics
        self.recorder = obs.recorder
        # Instrument handles are resolved once per binding, never per event:
        # the hot path (end_fire) touches pre-bound Counter/Histogram objects.
        if self.metrics is not None:
            m = self.metrics
            self._m_sched = m.counter(
                "repro_events_scheduled_total",
                "Events entering the pending queue.", track=track)
            self._m_fired = m.counter(
                "repro_events_fired_total",
                "Event handlers fired by the dispatch loop.", track=track)
            self._m_handler_ns = m.histogram(
                "repro_handler_duration_ns",
                "Handler wall time in nanoseconds (pow-2 buckets).",
                track=track)
            self._m_rollbacks = m.counter(
                "repro_rollbacks_total",
                "Time Warp rollbacks applied to this LP.", track=track)
            self._m_rolled_back = m.counter(
                "repro_rolled_back_events_total",
                "Speculative events undone by rollbacks.", track=track)
            self._m_reallocs = m.counter(
                "repro_flow_reallocations_total",
                "Flow-network bandwidth share recomputations.", track=track)
            self._m_migrations = m.counter(
                "repro_queue_migrations_total",
                "Adaptive event-queue backend migrations.", track=track)
            self._m_flow_aborts = m.counter(
                "repro_flow_aborts_total",
                "In-flight transfers aborted by link outages.", track=track)
            self._m_transfer_retries = m.counter(
                "repro_transfer_retries_total",
                "File-transfer attempts re-queued after an abort.",
                track=track)
            # GVT is global, not per-LP: no track label, so every binding
            # of this registry shares the same pair of instruments.
            self._m_gvt = m.gauge(
                "repro_gvt", "Latest committed global virtual time.")
            self._m_gvt_rounds = m.counter(
                "repro_gvt_rounds_total", "GVT reduction rounds observed.")
        else:
            self._m_sched = self._m_fired = self._m_handler_ns = None
            self._m_rollbacks = self._m_rolled_back = None
            self._m_reallocs = self._m_migrations = None
            self._m_gvt = self._m_gvt_rounds = None
            self._m_flow_aborts = self._m_transfer_retries = None
        #: span of the event whose handler is executing right now — the
        #: causal parent of anything scheduled during that window.
        self.current: Optional[EventSpan] = None

    # -- engine hooks --------------------------------------------------------

    def on_schedule(self, ev: Any, now: float) -> None:
        """A new event entered the queue (engine ``schedule_at``)."""
        tracer = self.tracer
        if tracer is not None:
            ev.obs_span = tracer.on_schedule(self.track, ev, now, self.current)
        m = self._m_sched
        if m is not None:
            m.value += 1.0

    def begin_fire(self, ev: Any) -> int:
        """About to run *ev*'s handler; returns the wall stamp."""
        # Unconditional: a span-less event (e.g. a clone replayed after a
        # Time Warp rollback) must not inherit the previous firing's span
        # as a stale causal parent.
        self.current = ev.obs_span
        return perf_counter_ns()

    def end_fire(self, ev: Any, t0: int) -> None:
        """*ev*'s handler returned (or raised); seal timing records."""
        dur = perf_counter_ns() - t0
        profiler = self.profiler
        if profiler is not None:
            profiler.add(ev.fn, dur)
        span = ev.obs_span
        if span is not None:
            Tracer.on_fired(span, t0, dur)
            ev.obs_span = None
            self.current = None
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_event(self.sim)
        m = self._m_fired
        if m is not None:
            m.value += 1.0
            # Inlined Histogram.observe: dur is an int of nanoseconds, so
            # the pow-2 bucket index is its bit length (kept in sync with
            # metrics.Histogram — the e11 bench gates this path at <=10%).
            h = self._m_handler_ns
            h.count += 1
            h.sum += dur
            idx = dur.bit_length()
            h.counts[idx if idx <= POW2_BUCKET_MAX_EXP
                     else POW2_BUCKET_MAX_EXP + 1] += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.ring.append(
                (self.track, ev.time, ev.fn, len(self.sim._queue)))

    # -- layer hooks (processes, transfers, cross-LP messages) ---------------

    def on_process(self, process: Any, phase: str) -> None:
        """Process lifecycle annotation (spawn/done/failed/interrupt)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "process", f"{phase}:{process.name}",
                          self.sim.now)

    def on_transfer_begin(self, ticket: Any) -> None:
        """A file transfer left the backlog and hit the wire."""
        tracer = self.tracer
        if tracer is not None:
            tracer.async_begin(
                id(ticket), self.track, "transfer",
                f"{ticket.file.name} {ticket.src}->{ticket.dst}",
                self.sim.now,
                {"bytes": ticket.file.size,
                 "queue_delay": ticket.queue_delay})

    def on_transfer_end(self, ticket: Any) -> None:
        """The transfer completed; close its interval."""
        tracer = self.tracer
        if tracer is not None:
            tracer.async_end(id(ticket), self.sim.now,
                             {"total_time": ticket.total_time})

    def on_transfer_retry(self, ticket: Any) -> None:
        """A failed transfer attempt was re-queued with backoff."""
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "transfer",
                          f"retry:{ticket.file.name}", self.sim.now,
                          {"attempt": ticket.attempts,
                           "route": f"{ticket.src}->{ticket.dst}"})
        m = self._m_transfer_retries
        if m is not None:
            m.value += 1.0

    def on_flow_abort(self, handle: Any) -> None:
        """A link outage killed an in-flight flow."""
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "network",
                          f"flow-abort:{handle.src}->{handle.dst}",
                          self.sim.now,
                          {"remaining_bytes": handle.remaining,
                           "reason": handle.error})
        m = self._m_flow_aborts
        if m is not None:
            m.value += 1.0

    def on_fault(self, kind: str, name: str, phase: str,
                 downtime: float | None = None) -> None:
        """A fault-graph component transitioned (*phase*: fail|repair).

        Fault transitions are rare, so the labeled counter is resolved per
        call rather than pre-bound; repair transitions also record the
        outage length in the MTTR histogram.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "fault", f"{phase}:{name}",
                          self.sim.now, {"kind": kind})
        m = self.metrics
        if m is not None:
            m.counter("repro_fault_transitions_total",
                      "Fault-graph component up/down transitions.",
                      track=self.track, kind=kind, phase=phase).inc()
            if phase == "repair" and downtime is not None:
                m.histogram("repro_fault_repair_seconds",
                            "Per-outage time to repair (pow-2 buckets).",
                            track=self.track, kind=kind).observe(downtime)

    def on_message_send(self, msg: Any) -> None:
        """This LP emitted a cross-LP message during the current firing."""
        tracer = self.tracer
        if tracer is not None:
            tracer.on_message_send(msg, self.current)

    def on_message_recv(self, msg: Any, ev: Any) -> None:
        """A cross-LP message was scheduled for local dispatch as *ev*."""
        tracer = self.tracer
        if tracer is not None:
            tracer.on_message_recv(msg, ev.obs_span)

    def on_reallocate(self, flows: int, rescheduled: int,
                      preserved: int) -> None:
        """A flow network recomputed bandwidth shares for *flows* flows."""
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_reallocate(flows, rescheduled, preserved)
        m = self._m_reallocs
        if m is not None:
            m.value += 1.0

    def on_queue_migrate(self, src: str, dst: str, moved: int) -> None:
        """The adaptive event queue switched its backing structure."""
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "queue",
                          f"queue-migrate:{src}->{dst}", self.sim.now,
                          {"from": src, "to": dst, "events_moved": moved})
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_queue_migrate(src, dst, moved)
        m = self._m_migrations
        if m is not None:
            m.value += 1.0

    def on_rollback(self, now: float, straggler_time: float,
                    restored_to: float, depth_events: int) -> None:
        """Time Warp rolled this LP back (straggler or anti-message)."""
        tracer = self.tracer
        if tracer is not None:
            tracer.marker(self.track, "rollback",
                          f"rollback:{self.track}", now,
                          {"straggler_time": straggler_time,
                           "restored_to": restored_to,
                           "depth_events": depth_events})
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_rollback(depth_events)
        m = self._m_rollbacks
        if m is not None:
            m.value += 1.0
            self._m_rolled_back.value += depth_events

    def on_gvt(self, gvt: float) -> None:
        """The optimistic executor committed a new global virtual time."""
        m = self._m_gvt
        if m is not None:
            m.value = gvt
            self._m_gvt_rounds.value += 1.0
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_gvt(gvt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObsBinding track={self.track!r}>"


class Observation:
    """One observed run: tracing, profiling, and telemetry à la carte.

    Parameters
    ----------
    trace / profile / telemetry:
        Enable the corresponding facet.  All three default on; each off
        switch removes that facet's per-event work entirely.
    heartbeat:
        Wall seconds between progress lines (None = silent telemetry).
    sink:
        Heartbeat destination (default stderr); any ``str -> None`` callable.
    metrics:
        ``True`` for a fresh :class:`~repro.obs.metrics.Registry`, or pass a
        registry to share one across observations (default off — the
        single-run facets above are usually enough outside fleet runs).
    recorder:
        Flight-recorder capacity (an int), or a prebuilt
        :class:`~repro.obs.recorder.FlightRecorder` to share (default off).
    """

    def __init__(self, trace: bool = True, profile: bool = True,
                 telemetry: bool = True, heartbeat: float | None = None,
                 sink=None, metrics: "bool | Registry" = False,
                 recorder: "int | FlightRecorder | None" = None) -> None:
        self.tracer: Tracer | None = Tracer() if trace else None
        self.profiler: HandlerProfiler | None = HandlerProfiler() if profile else None
        self.telemetry: Telemetry | None = (
            Telemetry(heartbeat=heartbeat, sink=sink) if telemetry else None)
        if metrics is True:
            self.metrics: Registry | None = Registry()
        else:
            self.metrics = metrics or None
        if recorder is None or isinstance(recorder, FlightRecorder):
            self.recorder: FlightRecorder | None = recorder
        else:
            self.recorder = FlightRecorder(int(recorder))
        self.bindings: list[ObsBinding] = []
        self._job_hook_installed = False

    # -- attachment ----------------------------------------------------------

    def attach(self, sim: Any, track: str | None = None) -> "Observation":
        """Observe *sim* (idempotent per simulator); chainable."""
        existing = getattr(sim, "_obs", None)
        if existing is not None and existing.obs is self:
            return self
        binding = ObsBinding(self, sim, track or f"sim{len(self.bindings)}")
        sim._obs = binding
        self.bindings.append(binding)
        queue = getattr(sim, "_queue", None)
        if isinstance(queue, AdaptiveQueue):
            queue.on_migrate = binding.on_queue_migrate
            if self.telemetry is not None:
                self.telemetry.queue_backend = queue.backend_kind
        return self

    def attach_lps(self, lps) -> "Observation":
        """Observe every logical process, one track per LP name."""
        for lp in lps:
            self.attach(lp.sim, track=lp.name)
        return self

    def detach(self, sim: Any) -> None:
        """Stop observing *sim* (records collected so far are kept)."""
        binding = getattr(sim, "_obs", None)
        if binding is not None and binding.obs is self:
            sim._obs = None
            self.bindings = [b for b in self.bindings if b is not binding]
            queue = getattr(sim, "_queue", None)
            if isinstance(queue, AdaptiveQueue) \
                    and queue.on_migrate == binding.on_queue_migrate:
                queue.on_migrate = None

    def observe_jobs(self) -> "Observation":
        """Record middleware job state transitions as trace markers."""
        if self.tracer is not None and not self._job_hook_installed:
            from ..middleware import jobs as _jobs

            def on_transition(job, to, now, _tracer=self.tracer):
                _tracer.marker("jobs", "job", f"job{job.id}:{to.value}", now,
                               {"job": job.id, "state": to.value})

            _jobs.set_job_observer(on_transition)
            self._job_hook_installed = True
        return self

    def unobserve_jobs(self) -> None:
        """Remove the job-transition hook installed by :meth:`observe_jobs`."""
        if self._job_hook_installed:
            from ..middleware import jobs as _jobs
            _jobs.set_job_observer(None)
            self._job_hook_installed = False

    def close(self) -> None:
        """Detach from every simulator and release global hooks."""
        for binding in list(self.bindings):
            self.detach(binding.sim)
        self.unobserve_jobs()
        if self.tracer is not None:
            self.tracer.finalize()

    # -- exports -------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome trace-event object (requires ``trace=True``)."""
        if self.tracer is None:
            raise ValueError("tracing was not enabled on this Observation")
        return chrome_trace(self.tracer, self.telemetry)

    def export_chrome(self, path) -> int:
        """Write the Perfetto-loadable trace JSON; returns event count."""
        if self.tracer is None:
            raise ValueError("tracing was not enabled on this Observation")
        with open(path, "w") as fp:
            return write_chrome_trace(self.tracer, fp, self.telemetry)

    def profile_table(self, top: int = 15) -> str:
        """Markdown hot-spot table (requires ``profile=True``)."""
        if self.profiler is None:
            raise ValueError("profiling was not enabled on this Observation")
        return profile_markdown(self.profiler, top=top)

    def metrics_csv(self, sim: Any = None) -> str:
        """Telemetry + profile rows as CSV text."""
        if sim is None and self.bindings:
            sim = self.bindings[0].sim
        return metrics_csv(self.profiler, self.telemetry, sim)

    def prometheus_text(self) -> str:
        """Metrics registry in Prometheus exposition format."""
        if self.metrics is None:
            raise ValueError("metrics were not enabled on this Observation")
        return self.metrics.prometheus_text()

    def summary(self) -> dict:
        """Topline numbers from every enabled facet."""
        out: dict[str, Any] = {}
        if self.tracer is not None:
            out["trace"] = self.tracer.counts()
        if self.profiler is not None:
            out["profile"] = {"handlers": len(self.profiler),
                              "firings": self.profiler.firings,
                              "total_ms": self.profiler.total_ns / 1e6}
        if self.telemetry is not None:
            sim = self.bindings[0].sim if self.bindings else None
            out["telemetry"] = self.telemetry.snapshot(sim)
        if self.metrics is not None:
            out["metrics"] = {"instruments": len(self.metrics)}
        if self.recorder is not None:
            out["recorder"] = {"events": len(self.recorder),
                               "last_handler": self.recorder.last_handler()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        facets = [name for name, on in (("trace", self.tracer),
                                        ("profile", self.profiler),
                                        ("telemetry", self.telemetry),
                                        ("metrics", self.metrics),
                                        ("recorder", self.recorder)) if on]
        return f"<Observation {'+'.join(facets) or 'off'} sims={len(self.bindings)}>"
