"""Metrics registry — labeled counters, gauges, and fixed-bucket histograms.

The single-run facets (tracer/profiler/telemetry) answer "what happened in
*this* run"; fleet-scale operation needs the complementary question — "what
is happening across *all* runs" — answered in a format existing tooling
scrapes.  This module is that layer: a :class:`Registry` of named,
label-partitioned instruments whose state is

* **cheap to update** — an instrument handle is resolved once (at
  ``Observation.attach`` time, never per event) and ``Counter.inc`` is one
  attribute add; :class:`Histogram` defaults to power-of-two buckets so an
  observation is an ``int.bit_length()`` index, no bisect;
* **plain data** — :meth:`Registry.dump` emits builtins only, so a campaign
  worker ships its registry through a pipe and the parent folds it into a
  fleet-wide view with :meth:`Registry.merge`;
* **scrapeable** — :meth:`Registry.prometheus_text` renders the Prometheus
  text exposition format (``# TYPE`` / ``# HELP`` / ``name{label="v"} v``)
  and :meth:`Registry.jsonl` one JSON object per instrument per line.

A process-wide default registry (:func:`get_registry`) exists for code that
wants ambient metrics; the campaign runner deliberately uses one fresh
:class:`Registry` per run instead, so per-run dumps stay attributable.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "Registry", "get_registry",
           "set_registry", "POW2_BUCKET_MAX_EXP"]

#: highest power-of-two bucket exponent; values with a longer bit length
#: land in the overflow bucket (index ``POW2_BUCKET_MAX_EXP + 1``).
POW2_BUCKET_MAX_EXP = 62


class Counter:
    """Monotonically increasing count (events fired, retries, timeouts)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the count."""
        self.value += amount

    def _state(self) -> dict:
        return {"value": self.value}

    def _merge(self, state: Mapping[str, Any]) -> None:
        self.value += state["value"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{dict(self.labels)} {self.value}>"


class Gauge:
    """A value that goes up and down (queue depth, GVT, live workers)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Shift the level by *amount*."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Shift the level by ``-amount``."""
        self.value -= amount

    def _state(self) -> dict:
        return {"value": self.value}

    def _merge(self, state: Mapping[str, Any]) -> None:
        # Gauges are levels, not totals: a merged dump reports the most
        # recent observation (dumps are merged in completion order).
        self.value = state["value"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{dict(self.labels)} {self.value}>"


class Histogram:
    """Fixed-bucket distribution (handler nanoseconds, rollback depths).

    With the default (``buckets=None``) the bucket edges are the powers of
    two: bucket *i* counts observations whose integer part has bit length
    *i*, i.e. values in ``[2**(i-1), 2**i - 1]`` — so the hot-path cost of
    :meth:`observe` is one ``int.bit_length()`` call, no search.  Explicit
    ``buckets`` (a sorted sequence of inclusive upper bounds) fall back to a
    binary search per observation.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, labels: tuple,
                 buckets: Iterable[float] | None = None) -> None:
        self.name = name
        self.labels = labels
        if buckets is None:
            self.bounds = None  # power-of-two fast path
            self.counts = [0] * (POW2_BUCKET_MAX_EXP + 2)
        else:
            self.bounds = sorted(float(b) for b in buckets)
            self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.count += 1
        self.sum += value
        if self.bounds is None:
            idx = int(value).bit_length() if value > 0 else 0
            if idx > POW2_BUCKET_MAX_EXP:
                idx = POW2_BUCKET_MAX_EXP + 1
            self.counts[idx] += 1
        else:
            self.counts[bisect_left(self.bounds, value)] += 1

    def bucket_bounds(self) -> list[float]:
        """Inclusive upper bound of every non-overflow bucket."""
        if self.bounds is not None:
            return list(self.bounds)
        return [float(2 ** i - 1) for i in range(POW2_BUCKET_MAX_EXP + 1)]

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def _state(self) -> dict:
        return {"sum": self.sum, "count": self.count,
                "counts": list(self.counts),
                "bounds": None if self.bounds is None else list(self.bounds)}

    def _merge(self, state: Mapping[str, Any]) -> None:
        theirs = state["counts"]
        if len(theirs) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r}: bucket layouts differ "
                f"({len(self.counts)} vs {len(theirs)})")
        self.sum += state["sum"]
        self.count += state["count"]
        for i, n in enumerate(theirs):
            self.counts[i] += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name}{dict(self.labels)} "
                f"n={self.count} mean={self.mean:.1f}>")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Registry:
    """A named collection of instruments, partitioned by label sets.

    ``registry.counter("repro_events_fired_total", track="lp0")`` returns
    the one counter for that (name, labels) pair, creating it on first use;
    a second call with the same labels returns the same object — resolve
    once, hold the handle, update it on the hot path.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # -- instrument resolution -----------------------------------------------

    def _get(self, kind: str, name: str, help: str, labels: dict,
             **extra: Any) -> Any:
        key = (name, tuple(sorted(labels.items())))
        inst = self._instruments.get(key)
        if inst is None:
            seen = self._kinds.get(name)
            if seen is not None and seen != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {seen}, "
                    f"cannot re-register as a {kind}")
            self._kinds[name] = kind
            if help:
                self._help[name] = help
            inst = _KINDS[kind](name, key[1], **extra)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter for (*name*, *labels*), created on first use."""
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge for (*name*, *labels*), created on first use."""
        return self._get("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        """The histogram for (*name*, *labels*), created on first use."""
        return self._get("histogram", name, help, labels, buckets=buckets)

    # -- introspection -------------------------------------------------------

    def instruments(self) -> list[Any]:
        """Every instrument, sorted by (name, labels) for stable output."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def value(self, name: str, **labels: Any) -> float | None:
        """Scalar value of a counter/gauge, or a histogram's count; None
        when the (name, labels) pair was never registered."""
        inst = self._instruments.get((name, tuple(sorted(labels.items()))))
        if inst is None:
            return None
        return inst.count if inst.kind == "histogram" else inst.value

    def __len__(self) -> int:
        return len(self._instruments)

    def __bool__(self) -> bool:
        return True

    # -- cross-process transport ---------------------------------------------

    def dump(self) -> list[dict]:
        """Plain-builtin snapshot of every instrument (pickle/JSON-safe)."""
        out = []
        for inst in self.instruments():
            entry = {"name": inst.name, "kind": inst.kind,
                     "labels": dict(inst.labels),
                     "help": self._help.get(inst.name, "")}
            entry.update(inst._state())
            out.append(entry)
        return out

    def merge(self, dump: Iterable[Mapping[str, Any]]) -> "Registry":
        """Fold a :meth:`dump` (typically from another process) into this
        registry: counters and histograms add, gauges take the dumped level.
        Chainable."""
        for entry in dump:
            kind = entry["kind"]
            extra = {}
            if kind == "histogram":
                bounds = entry.get("bounds")
                extra["buckets"] = bounds  # None keeps the pow-2 layout
            inst = self._get(kind, entry["name"], entry.get("help", ""),
                             dict(entry["labels"]), **extra)
            inst._merge(entry)
        return self

    # -- exporters -----------------------------------------------------------

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format for every instrument."""
        by_name: dict[str, list] = {}
        for inst in self.instruments():
            by_name.setdefault(inst.name, []).append(inst)
        lines: list[str] = []
        for name in sorted(by_name):
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for inst in by_name[name]:
                base = dict(inst.labels)
                if inst.kind == "histogram":
                    cum = 0
                    for bound, n in zip(inst.bucket_bounds(), inst.counts):
                        if n == 0 and inst.bounds is None:
                            continue  # elide empty pow-2 buckets (63 of them)
                        cum += n
                        lines.append(_prom_sample(
                            f"{name}_bucket", {**base, "le": _prom_num(bound)},
                            cum))
                    lines.append(_prom_sample(
                        f"{name}_bucket", {**base, "le": "+Inf"}, inst.count))
                    lines.append(_prom_sample(f"{name}_sum", base, inst.sum))
                    lines.append(_prom_sample(f"{name}_count", base,
                                              inst.count))
                else:
                    lines.append(_prom_sample(name, base, inst.value))
        return "\n".join(lines) + ("\n" if lines else "")

    def jsonl(self) -> str:
        """One JSON object per instrument per line (machine-mergeable)."""
        lines = [json.dumps(entry, sort_keys=True) for entry in self.dump()]
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry instruments={len(self._instruments)}>"


def _prom_num(value: float) -> str:
    """Render a number the way Prometheus samples expect (no float noise
    for integral values)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_sample(name: str, labels: Mapping[str, Any], value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        return f"{name}{{{body}}} {_prom_num(value)}"
    return f"{name} {_prom_num(value)}"


#: the process-wide ambient registry (campaign runs use per-run registries)
_DEFAULT = Registry()


def get_registry() -> Registry:
    """The process-wide default registry."""
    return _DEFAULT


def set_registry(registry: Registry) -> Registry:
    """Replace the process-wide default registry; returns the old one."""
    global _DEFAULT
    old, _DEFAULT = _DEFAULT, registry
    return old
