"""Span and marker records — the tracer's data model.

An :class:`EventSpan` is the lifecycle of one kernel event: *scheduled*
(when and by whom), then either *fired* (with the handler's measured wall
time) or *cancelled*.  Causality is explicit: ``parent`` points at the span
of the event whose handler scheduled this one, so the whole run unfolds as
a forest of cause→effect chains — which firing scheduled which event,
through arbitrary layers of processes, resources, and middleware.

Spans deliberately store *references* (the callback, the parent span) and
resolve display names lazily at export time; the hot path pays only slot
stores, never ``getattr`` string formatting.

:class:`Marker` and :class:`AsyncSpan` are the two auxiliary record kinds:
point-in-time annotations (process spawned, job changed state) and
begin/end intervals that outlive any single event (file transfers).
"""

from __future__ import annotations

from os.path import basename
from typing import Any, Optional

__all__ = ["SpanStatus", "EventSpan", "Marker", "AsyncSpan"]


class SpanStatus:
    """Event lifecycle states (plain ints: compared in hot-ish paths)."""

    PENDING = 0    #: scheduled, not yet fired, not known cancelled
    FIRED = 1      #: handler ran; wall timing recorded
    CANCELLED = 2  #: cancelled before firing

    NAMES = {PENDING: "pending", FIRED: "fired", CANCELLED: "cancelled"}


class EventSpan:
    """Lifecycle record of one scheduled kernel event.

    Attributes
    ----------
    track:
        Timeline name (one per attached simulator — the LP name under
        distributed execution).
    seq:
        The event's kernel sequence number (unique per simulator).
    label / fn:
        The event's diagnostic label and raw callback; the exporter derives
        ``module.qualname`` from ``fn`` lazily.
    parent:
        The :class:`EventSpan` of the event whose firing scheduled this one
        (None for externally scheduled roots).  Cross-LP message deliveries
        point at the *sending* LP's firing span (``remote`` is then True).
    sched_sim / due_sim:
        Simulation clock when scheduled, and the requested firing time.
    sched_wall / fire_wall:
        ``perf_counter_ns`` stamps (tracer-epoch relative at export).
    dur_ns:
        Handler wall time in nanoseconds (0 until fired).
    """

    __slots__ = ("track", "seq", "priority", "label", "fn", "parent",
                 "sched_sim", "due_sim", "sched_wall", "fire_wall", "dur_ns",
                 "status", "remote", "event")

    def __init__(self, track: str, seq: int, priority: int, label: str,
                 fn: Any, parent: Optional["EventSpan"], sched_sim: float,
                 due_sim: float, sched_wall: int, event: Any) -> None:
        self.track = track
        self.seq = seq
        self.priority = priority
        self.label = label
        self.fn = fn
        self.parent = parent
        self.sched_sim = sched_sim
        self.due_sim = due_sim
        self.sched_wall = sched_wall
        self.fire_wall = 0
        self.dur_ns = 0
        self.status = SpanStatus.PENDING
        self.remote = False
        #: live Event reference while pending — lets finalize() resolve
        #: cancellations without any hook on the (hot) cancel path.
        self.event = event

    @property
    def fn_name(self) -> str:
        """``module.qualname`` of the callback (display name)."""
        return callback_name(self.fn)

    @property
    def name(self) -> str:
        """Preferred display name: the label, else the callback name."""
        return self.label or self.fn_name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventSpan {self.track}#{self.seq} {self.name!r} "
                f"{SpanStatus.NAMES[self.status]} due={self.due_sim:.6g}>")


class Marker:
    """A point-in-time annotation (process spawn, job state change...)."""

    __slots__ = ("track", "category", "name", "wall", "sim_time", "args")

    def __init__(self, track: str, category: str, name: str, wall: int,
                 sim_time: float, args: dict | None = None) -> None:
        self.track = track
        self.category = category
        self.name = name
        self.wall = wall
        self.sim_time = sim_time
        self.args = args or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Marker {self.category}:{self.name} t={self.sim_time:.6g}>"


class AsyncSpan:
    """A begin/end interval spanning many events (e.g. one file transfer)."""

    __slots__ = ("track", "category", "name", "begin_wall", "end_wall",
                 "begin_sim", "end_sim", "args")

    def __init__(self, track: str, category: str, name: str, begin_wall: int,
                 begin_sim: float, args: dict | None = None) -> None:
        self.track = track
        self.category = category
        self.name = name
        self.begin_wall = begin_wall
        self.begin_sim = begin_sim
        self.end_wall: int | None = None
        self.end_sim: float | None = None
        self.args = args or {}

    @property
    def open(self) -> bool:
        """True until :meth:`close` is called."""
        return self.end_wall is None

    def close(self, end_wall: int, end_sim: float) -> None:
        """Record the interval's end stamps."""
        self.end_wall = end_wall
        self.end_sim = end_sim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<AsyncSpan {self.category}:{self.name} {state}>"


def callback_name(fn: Any) -> str:
    """``module.qualname`` for any callable (methods, partials, lambdas).

    Anonymous callables would all collapse into one ``<lambda>`` bucket and
    make hot-spot tables unattributable, so lambdas get their definition
    site appended (``queues.<lambda>@bench.py:42``) — distinct lambdas stay
    distinct while named functions (including through ``functools.partial``
    and bound methods) keep their plain ``module.qualname`` key.
    """
    f = getattr(fn, "__func__", fn)  # unwrap bound methods
    qual = getattr(f, "__qualname__", None)
    if qual is None:
        func = getattr(f, "func", None)  # functools.partial
        if func is not None:
            return callback_name(func)
        return type(fn).__name__
    module = getattr(f, "__module__", "") or ""
    short = module.rsplit(".", 1)[-1] if module else ""
    name = f"{short}.{qual}" if short else qual
    if "<lambda>" in qual:
        code = getattr(f, "__code__", None)
        if code is not None:
            name = f"{name}@{basename(code.co_filename)}:{code.co_firstlineno}"
    return name
