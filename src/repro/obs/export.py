"""Exporters: Chrome trace-event JSON, CSV metrics, markdown hot spots.

The taxonomy's *visual output analyzer* axis notes simulation output is
"difficult to be analyzed using a pure text format"; rather than ship a GUI
this module emits the Chrome trace-event format, which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

* each attached simulator (LP) becomes a named thread track;
* every fired event is a complete slice (``ph="X"``) at its wall-clock
  firing time with the handler's measured duration;
* causal parentage becomes flow arrows (``ph="s"``/``"f"``) from the
  scheduling firing to the scheduled firing — including cross-LP arrows;
* transfers are async intervals, process/job annotations instant events.

Timestamps are microseconds relative to the tracer's epoch.  Slices shorter
than the viewer can render are still emitted — Perfetto handles sub-µs
durations (fractional ``dur``) fine.
"""

from __future__ import annotations

import json
from typing import IO, Any

from .profiler import HandlerProfiler
from .spans import SpanStatus
from .telemetry import Telemetry
from .tracer import Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "profile_markdown",
           "profile_csv", "telemetry_csv", "metrics_csv"]

_PID = 1  # one simulated "process"; tracks are threads beneath it


def chrome_trace(tracer: Tracer, telemetry: Telemetry | None = None) -> dict:
    """Build the Chrome trace-event JSON object for *tracer*'s records."""
    tracer.finalize()
    epoch = tracer.epoch_ns
    events: list[dict] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]

    tids: dict[str, int] = {}

    def tid(track: str) -> int:
        t = tids.get(track)
        if t is None:
            t = len(tids) + 1
            tids[track] = t
            events.append({"ph": "M", "pid": _PID, "tid": t,
                           "name": "thread_name", "args": {"name": track}})
        return t

    def us(wall_ns: int) -> float:
        return (wall_ns - epoch) / 1000.0

    # Export ids are stable list positions; flows reuse the child's id.
    flow_id = 0
    for span in tracer.spans:
        if span.status != SpanStatus.FIRED:
            continue
        t = tid(span.track)
        ts = us(span.fire_wall)
        events.append({
            "ph": "X", "pid": _PID, "tid": t, "ts": ts,
            "dur": span.dur_ns / 1000.0,
            "name": span.name, "cat": "event",
            "args": {"t_sim": span.due_sim, "seq": span.seq,
                     "priority": span.priority,
                     "scheduled_at": span.sched_sim,
                     "handler": span.fn_name},
        })
        parent = span.parent
        if parent is not None and parent.status == SpanStatus.FIRED:
            flow_id += 1
            cat = "causal-remote" if span.remote else "causal"
            events.append({"ph": "s", "pid": _PID, "tid": tid(parent.track),
                           "ts": us(parent.fire_wall), "id": flow_id,
                           "name": "causes", "cat": cat})
            events.append({"ph": "f", "pid": _PID, "tid": t, "ts": ts,
                           "bp": "e", "id": flow_id,
                           "name": "causes", "cat": cat})

    async_id = 0
    for aspan in tracer.async_spans:
        if aspan.open:
            continue
        async_id += 1
        t = tid(aspan.track)
        base = {"pid": _PID, "tid": t, "id": async_id,
                "name": aspan.name, "cat": aspan.category}
        events.append({**base, "ph": "b", "ts": us(aspan.begin_wall),
                       "args": dict(aspan.args, t_sim=aspan.begin_sim)})
        events.append({**base, "ph": "e", "ts": us(aspan.end_wall),
                       "args": {"t_sim": aspan.end_sim}})

    for mk in tracer.markers:
        events.append({
            "ph": "i", "s": "t", "pid": _PID, "tid": tid(mk.track),
            "ts": us(mk.wall), "name": mk.name, "cat": mk.category,
            "args": dict(mk.args, t_sim=mk.sim_time),
        })

    meta: dict[str, Any] = {"tracer": tracer.counts()}
    if telemetry is not None:
        meta["telemetry"] = telemetry.snapshot()
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": meta}


def write_chrome_trace(tracer: Tracer, fp: IO[str],
                       telemetry: Telemetry | None = None) -> int:
    """Serialize the Chrome trace to an open text file; returns event count."""
    payload = chrome_trace(tracer, telemetry)
    json.dump(payload, fp)
    return len(payload["traceEvents"])


# -- profiler reductions -----------------------------------------------------

def profile_markdown(profiler: HandlerProfiler, top: int = 15) -> str:
    """Hot-spot table (markdown), hottest handler first."""
    rows = profiler.rows()
    lines = [
        "| handler | firings | total ms | mean µs | max µs | share |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for stats in rows[:top]:
        lines.append(
            f"| `{stats.key}` | {stats.count:,} "
            f"| {stats.total_ns / 1e6:.3f} "
            f"| {stats.mean_ns / 1e3:.2f} "
            f"| {stats.max_ns / 1e3:.2f} "
            f"| {profiler.share(stats):.1%} |")
    if len(rows) > top:
        rest = rows[top:]
        rest_ns = sum(s.total_ns for s in rest)
        rest_n = sum(s.count for s in rest)
        lines.append(f"| *({len(rest)} more)* | {rest_n:,} "
                     f"| {rest_ns / 1e6:.3f} |  |  "
                     f"| {rest_ns / profiler.total_ns if profiler.total_ns else 0:.1%} |")
    return "\n".join(lines)


def profile_csv(profiler: HandlerProfiler) -> str:
    """Per-handler aggregates as CSV text."""
    lines = ["handler,firings,total_ns,mean_ns,max_ns,min_ns,share"]
    for stats in profiler.rows():
        lines.append(f"{stats.key},{stats.count},{stats.total_ns},"
                     f"{stats.mean_ns:.1f},{stats.max_ns},"
                     f"{stats.min_ns or 0},{profiler.share(stats):.6f}")
    return "\n".join(lines) + "\n"


def telemetry_csv(telemetry: Telemetry, sim: Any = None) -> str:
    """Telemetry snapshot as metric,value CSV text."""
    lines = ["metric,value"]
    for key, value in telemetry.snapshot(sim).items():
        lines.append(f"{key},{value!r}")
    return "\n".join(lines) + "\n"


def metrics_csv(profiler: HandlerProfiler | None,
                telemetry: Telemetry | None, sim: Any = None) -> str:
    """Combined CSV: telemetry snapshot, then per-handler profile rows."""
    parts = []
    if telemetry is not None:
        parts.append(telemetry_csv(telemetry, sim))
    if profiler is not None:
        parts.append(profile_csv(profiler))
    return "\n".join(parts)
