"""repro.obs — causal tracing, handler profiling, and run telemetry.

The paper's *monitoring* axis (MONARC's built-in view of the running
simulation) and *visual output analyzer* axis, made native: attach an
:class:`Observation` to any simulator (or a whole set of logical
processes) and get

* **causal event spans** — every event's scheduled→fired/cancelled
  lifecycle with the firing that caused it (:mod:`repro.obs.tracer`);
* **handler profiles** — wall time and firing counts per callback
  (:mod:`repro.obs.profiler`);
* **run telemetry** — events/sec, sim-time/wall-time ratio, queue depth,
  and a heartbeat progress line (:mod:`repro.obs.telemetry`);
* **fleet metrics** — labeled counters/gauges/histograms in a mergeable
  :class:`Registry` with Prometheus text-format and JSONL exporters
  (:mod:`repro.obs.metrics`);
* **flight recorder** — a bounded ring of the last N firings, dumped as a
  JSONL post-mortem when a run dies (:mod:`repro.obs.recorder`);
* **exports** — Chrome trace-event JSON (load it in Perfetto), CSV
  metrics, and markdown hot-spot tables (:mod:`repro.obs.export`).

Disabled cost is a single attribute check in the kernel — measured by the
``obs_overhead`` scenario in ``benchmarks/bench_kernel_hotpath.py`` and the
``e11_obs_fleet`` baseline section (disabled ≤2%, metrics-only ≤10%).
"""

from .export import (chrome_trace, metrics_csv, profile_csv,
                     profile_markdown, telemetry_csv, write_chrome_trace)
from .metrics import (Counter, Gauge, Histogram, Registry, get_registry,
                      set_registry)
from .profiler import HandlerProfiler, HandlerStats
from .recorder import (FlightRecorder, arm_postmortem, disarm_postmortem,
                       dump_postmortem, install_term_handler)
from .session import Observation, ObsBinding
from .spans import AsyncSpan, EventSpan, Marker, SpanStatus, callback_name
from .telemetry import Telemetry
from .tracer import Tracer

__all__ = [
    "Observation",
    "ObsBinding",
    "Tracer",
    "HandlerProfiler",
    "HandlerStats",
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "set_registry",
    "FlightRecorder",
    "arm_postmortem",
    "disarm_postmortem",
    "dump_postmortem",
    "install_term_handler",
    "EventSpan",
    "AsyncSpan",
    "Marker",
    "SpanStatus",
    "callback_name",
    "chrome_trace",
    "write_chrome_trace",
    "profile_markdown",
    "profile_csv",
    "telemetry_csv",
    "metrics_csv",
]
