"""repro.obs — causal tracing, handler profiling, and run telemetry.

The paper's *monitoring* axis (MONARC's built-in view of the running
simulation) and *visual output analyzer* axis, made native: attach an
:class:`Observation` to any simulator (or a whole set of logical
processes) and get

* **causal event spans** — every event's scheduled→fired/cancelled
  lifecycle with the firing that caused it (:mod:`repro.obs.tracer`);
* **handler profiles** — wall time and firing counts per callback
  (:mod:`repro.obs.profiler`);
* **run telemetry** — events/sec, sim-time/wall-time ratio, queue depth,
  and a heartbeat progress line (:mod:`repro.obs.telemetry`);
* **exports** — Chrome trace-event JSON (load it in Perfetto), CSV
  metrics, and markdown hot-spot tables (:mod:`repro.obs.export`).

Disabled cost is a single attribute check in the kernel — measured by the
``obs_overhead`` scenario in ``benchmarks/bench_kernel_hotpath.py``.
"""

from .export import (chrome_trace, metrics_csv, profile_csv,
                     profile_markdown, telemetry_csv, write_chrome_trace)
from .profiler import HandlerProfiler, HandlerStats
from .session import Observation, ObsBinding
from .spans import AsyncSpan, EventSpan, Marker, SpanStatus, callback_name
from .telemetry import Telemetry
from .tracer import Tracer

__all__ = [
    "Observation",
    "ObsBinding",
    "Tracer",
    "HandlerProfiler",
    "HandlerStats",
    "Telemetry",
    "EventSpan",
    "AsyncSpan",
    "Marker",
    "SpanStatus",
    "callback_name",
    "chrome_trace",
    "write_chrome_trace",
    "profile_markdown",
    "profile_csv",
    "telemetry_csv",
    "metrics_csv",
]
