"""Handler profiling — where the kernel's wall time actually goes.

The ROADMAP's "fast as the hardware allows" goal is unverifiable without a
profile; this module aggregates per-callback wall time (``perf_counter_ns``
around each firing) and firing counts, keyed by the callback's
``module.qualname`` — so ten thousand ``Process._step`` firings collapse
into one row, exactly the granularity a hot-spot hunt needs.  Anonymous
callables are the exception: each lambda keys on its definition site
(``mod.<lambda>@file.py:42``, see :func:`~repro.obs.spans.callback_name`),
so distinct lambdas never melt into one unattributable ``<lambda>`` row.

Aggregation is O(1) per firing: one dict lookup on the *callback object*
(an identity-keyed memo resolves the display key once per distinct
callable, not once per firing) plus four scalar updates.
"""

from __future__ import annotations

from typing import Any

from .spans import callback_name

__all__ = ["HandlerStats", "HandlerProfiler"]


class HandlerStats:
    """Aggregate wall-time statistics for one handler key."""

    __slots__ = ("key", "count", "total_ns", "max_ns", "min_ns")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self.min_ns: int | None = None

    def add(self, dur_ns: int) -> None:
        """Fold one firing's duration into the aggregate."""
        self.count += 1
        self.total_ns += dur_ns
        if dur_ns > self.max_ns:
            self.max_ns = dur_ns
        if self.min_ns is None or dur_ns < self.min_ns:
            self.min_ns = dur_ns

    @property
    def mean_ns(self) -> float:
        """Mean firing duration in nanoseconds."""
        return self.total_ns / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HandlerStats {self.key!r} n={self.count} total={self.total_ns}ns>"


class HandlerProfiler:
    """Aggregates firing counts and wall time by callback identity."""

    def __init__(self) -> None:
        self._stats: dict[str, HandlerStats] = {}
        #: memo: callable id -> display key (avoids getattr chains per firing)
        self._key_memo: dict[int, str] = {}
        self.total_ns = 0
        self.firings = 0

    def add(self, fn: Any, dur_ns: int) -> None:
        """Record one firing of *fn* that took *dur_ns* wall nanoseconds."""
        memo = self._key_memo
        fid = id(fn)
        key = memo.get(fid)
        if key is None:
            # Bound methods are created fresh per call site in some models,
            # so memo on the underlying function when there is one — its id
            # is stable and the display key identical.
            func = getattr(fn, "__func__", fn)
            fid2 = id(func)
            key = memo.get(fid2)
            if key is None:
                key = callback_name(fn)
                memo[fid2] = key
        stats = self._stats.get(key)
        if stats is None:
            stats = HandlerStats(key)
            self._stats[key] = stats
        stats.add(dur_ns)
        self.total_ns += dur_ns
        self.firings += 1

    # -- reductions ----------------------------------------------------------

    def rows(self) -> list[HandlerStats]:
        """All aggregates, hottest (most total wall time) first."""
        return sorted(self._stats.values(),
                      key=lambda s: (-s.total_ns, s.key))

    def share(self, stats: HandlerStats) -> float:
        """Fraction of all profiled wall time spent in *stats*' handler."""
        return stats.total_ns / self.total_ns if self.total_ns else 0.0

    def get(self, key: str) -> HandlerStats | None:
        """Aggregate for one display key, or None."""
        return self._stats.get(key)

    def __len__(self) -> int:
        return len(self._stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<HandlerProfiler handlers={len(self._stats)} "
                f"firings={self.firings} total={self.total_ns / 1e6:.3f}ms>")
