"""Causal event tracing — who scheduled what, and what it cost.

The paper's *monitoring* axis singles out MONARC for watching the running
simulation from inside; SimGrid's longevity is credited partly to its
integrated tracing toolchain.  :class:`Tracer` is this framework's
equivalent: attach it (via :class:`~repro.obs.session.Observation`) to one
or more simulators and every event's lifecycle is recorded as an
:class:`~repro.obs.spans.EventSpan` with **causal parentage** — the span of
the firing whose handler scheduled it.  Parentage needs no cooperation from
model code: the engine tells the tracer which event is currently firing,
and every ``schedule`` call that happens inside that window is its child.

Cross-simulator causality (distributed runs) is stitched through
:meth:`on_message_send` / :meth:`on_message_recv`: the sending LP's firing
span is remembered per message and grafted onto the receiving LP's dispatch
span, so a cause→effect chain follows a job across logical processes.

One tracer may serve many simulators concurrently (the threaded window
executor runs LPs on a pool); all mutation is either span-local (owned by
exactly one thread at a time) or a CPython-atomic list append / dict store.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Iterable, Optional

from .spans import AsyncSpan, EventSpan, Marker, SpanStatus

__all__ = ["Tracer"]


class Tracer:
    """Collects spans, markers, and async intervals for one observed run."""

    def __init__(self) -> None:
        #: perf_counter_ns at construction — the trace's wall-time epoch.
        self.epoch_ns = perf_counter_ns()
        self.spans: list[EventSpan] = []
        self.markers: list[Marker] = []
        self.async_spans: list[AsyncSpan] = []
        #: in-flight cross-LP messages: (src LP, send seq) -> sending span
        self._flows: dict[tuple[str, int], Optional[EventSpan]] = {}
        #: open transfer intervals keyed by id(ticket)
        self._open_async: dict[int, AsyncSpan] = {}
        self._finalized = False

    # -- span lifecycle (called by ObsBinding on the instrumented path) ------

    def on_schedule(self, track: str, ev: Any, now: float,
                    parent: Optional[EventSpan]) -> EventSpan:
        """Open a span for a freshly scheduled event; returns it."""
        span = EventSpan(track, ev.seq, ev.priority, ev.label, ev.fn, parent,
                         now, ev.time, perf_counter_ns(), ev)
        self.spans.append(span)
        return span

    @staticmethod
    def on_fired(span: EventSpan, t0: int, dur_ns: int) -> None:
        """Seal a span after its handler ran (wall stamps + status)."""
        span.fire_wall = t0
        span.dur_ns = dur_ns
        span.status = SpanStatus.FIRED
        span.event = None  # drop the Event: spans must not pin dead records

    # -- cross-LP message stitching ------------------------------------------

    def on_message_send(self, msg: Any, sender: Optional[EventSpan]) -> None:
        """Remember which firing produced *msg* (keyed by (src, seq))."""
        self._flows[(msg.src, msg.seq)] = sender

    def on_message_recv(self, msg: Any, span: Optional[EventSpan]) -> None:
        """Graft the sender's span onto the receiving dispatch event."""
        origin = self._flows.pop((msg.src, msg.seq), None)
        if span is not None and origin is not None:
            span.parent = origin
            span.remote = True

    # -- annotations ---------------------------------------------------------

    def marker(self, track: str, category: str, name: str, sim_time: float,
               args: dict | None = None) -> None:
        """Record a point-in-time annotation on *track*."""
        self.markers.append(
            Marker(track, category, name, perf_counter_ns(), sim_time, args))

    def async_begin(self, key: int, track: str, category: str, name: str,
                    sim_time: float, args: dict | None = None) -> None:
        """Open a begin/end interval identified by *key*."""
        span = AsyncSpan(track, category, name, perf_counter_ns(), sim_time, args)
        self._open_async[key] = span
        self.async_spans.append(span)

    def async_end(self, key: int, sim_time: float,
                  args: dict | None = None) -> None:
        """Close the interval opened under *key* (no-op when unknown)."""
        span = self._open_async.pop(key, None)
        if span is not None:
            span.close(perf_counter_ns(), sim_time)
            if args:
                span.args.update(args)

    # -- finishing -----------------------------------------------------------

    def finalize(self) -> None:
        """Resolve still-pending spans: cancelled events are marked so.

        Cancellation is detected lazily here (by asking the retained Event)
        rather than eagerly on ``Event.cancel`` — the cancel path stays as
        fast as the untraced kernel's.  Idempotent; exporters call it.
        """
        if self._finalized:
            return
        for span in self.spans:
            ev = span.event
            if ev is not None:
                if ev.cancelled:
                    span.status = SpanStatus.CANCELLED
                span.event = None
        self._finalized = True

    # -- queries -------------------------------------------------------------

    def fired_spans(self) -> list[EventSpan]:
        """Spans whose event actually ran, in firing order per track."""
        return [s for s in self.spans if s.status == SpanStatus.FIRED]

    def children_of(self, span: EventSpan) -> list[EventSpan]:
        """Direct causal children of *span* (linear scan — analysis only)."""
        return [s for s in self.spans if s.parent is span]

    def chain(self, span: EventSpan) -> list[EventSpan]:
        """Root-first causal ancestry of *span* (inclusive)."""
        out: list[EventSpan] = []
        seen: set[int] = set()
        cur: Optional[EventSpan] = span
        while cur is not None and id(cur) not in seen:
            seen.add(id(cur))
            out.append(cur)
            cur = cur.parent
        out.reverse()
        return out

    def counts(self) -> dict[str, int]:
        """Span totals by status plus annotation volumes."""
        self.finalize()
        by = {"fired": 0, "cancelled": 0, "pending": 0}
        for s in self.spans:
            by[SpanStatus.NAMES[s.status]] += 1
        by["markers"] = len(self.markers)
        by["async"] = len(self.async_spans)
        by["cross_lp_links"] = sum(1 for s in self.spans if s.remote)
        return by

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterable[EventSpan]:
        return iter(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer spans={len(self.spans)} markers={len(self.markers)}>"
