"""Run telemetry — events/sec, sim/wall ratio, queue depth, heartbeat.

The numbers an operator wants while a long simulation runs: how fast is it
going, how far has it got, is the event list growing without bound.  The
per-event cost is one integer increment and one comparison; everything
expensive (clock reads, queue-depth probes, line formatting) happens only
every ``check_every`` events, and the heartbeat line only after
``heartbeat`` wall seconds have passed since the last one.
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Any, Callable, Optional

__all__ = ["Telemetry"]


class Telemetry:
    """Counts firings and reports run-rate statistics.

    Parameters
    ----------
    heartbeat:
        Emit a progress line every this many *wall* seconds (None = never;
        counting still happens).
    sink:
        Where heartbeat lines go; default writes to stderr.  Any callable
        accepting one string works (a logger, a list's append...).
    check_every:
        How many firings between wall-clock checks — the knob trading
        heartbeat latency against per-event overhead.

    Attributes
    ----------
    beat_hook:
        Optional callable receiving each heartbeat's snapshot dict right
        after the line is emitted — the campaign worker uses this to ship
        live "beat" frames to the parent without subclassing.
    """

    def __init__(self, heartbeat: float | None = None,
                 sink: Callable[[str], None] | None = None,
                 check_every: int = 2048) -> None:
        self.heartbeat = heartbeat
        self.sink = sink if sink is not None else _stderr_sink
        self.beat_hook: Callable[[dict], None] | None = None
        self.check_every = max(1, int(check_every))
        self.events = 0
        #: Time Warp accounting (fed by ``ObsBinding.on_rollback``) — zero
        #: for conservative/sequential runs.
        self.rollbacks = 0
        self.rolled_back_events = 0
        self.max_rollback_depth = 0
        #: Flow-network bandwidth-sharing accounting (fed by
        #: ``ObsBinding.on_reallocate``) — zero for runs without a
        #: :class:`~repro.network.flow.FlowNetwork`.
        self.reallocs = 0
        self.realloc_flows = 0
        self.realloc_rescheduled = 0
        self.realloc_preserved = 0
        #: Adaptive event-queue accounting (fed by
        #: ``ObsBinding.on_queue_migrate``) — zero unless the simulator runs
        #: on an :class:`~repro.core.queues.AdaptiveQueue`.
        self.queue_migrations = 0
        self.queue_migrated_events = 0
        self.queue_backend: str | None = None
        #: GVT accounting (fed by ``ObsBinding.on_gvt``) — zero outside the
        #: optimistic executor.
        self.gvt_rounds = 0
        self.gvt = 0.0
        self.start_wall = perf_counter()
        self.start_sim: float | None = None
        self._next_check = self.check_every
        self._last_beat_wall = self.start_wall
        self._last_beat_events = 0
        self.heartbeats = 0

    # -- hot path ------------------------------------------------------------

    def on_event(self, sim: Any) -> None:
        """Count one firing; occasionally check whether to heartbeat."""
        self.events += 1
        if self.events >= self._next_check:
            self._next_check = self.events + self.check_every
            if self.start_sim is None:
                self.start_sim = sim.now
            if self.heartbeat is not None:
                wall = perf_counter()
                if wall - self._last_beat_wall >= self.heartbeat:
                    self.beat(sim, wall)

    def on_rollback(self, depth: int) -> None:
        """Record one Time Warp rollback undoing *depth* events."""
        self.rollbacks += 1
        self.rolled_back_events += depth
        if depth > self.max_rollback_depth:
            self.max_rollback_depth = depth

    def on_reallocate(self, flows: int, rescheduled: int,
                      preserved: int) -> None:
        """Record one bandwidth-sharing recompute over *flows* flows."""
        self.reallocs += 1
        self.realloc_flows += flows
        self.realloc_rescheduled += rescheduled
        self.realloc_preserved += preserved

    def on_queue_migrate(self, src: str, dst: str, moved: int) -> None:
        """Record one adaptive-queue backend switch moving *moved* events."""
        self.queue_migrations += 1
        self.queue_migrated_events += moved
        self.queue_backend = dst

    def on_gvt(self, gvt: float) -> None:
        """Record one committed global-virtual-time reduction round."""
        self.gvt_rounds += 1
        self.gvt = gvt

    # -- reporting -----------------------------------------------------------

    def beat(self, sim: Any, wall: float | None = None) -> str:
        """Emit (and return) one progress line for *sim* right now."""
        wall = perf_counter() if wall is None else wall
        window = wall - self._last_beat_wall
        inst_eps = ((self.events - self._last_beat_events) / window
                    if window > 0 else 0.0)
        self._last_beat_wall = wall
        self._last_beat_events = self.events
        self.heartbeats += 1
        snap = self.snapshot(sim, wall)
        line = (f"[obs] t={snap['sim_time']:.6g} events={self.events:,} "
                f"eps={inst_eps:,.0f} (avg {snap['events_per_sec']:,.0f}) "
                f"depth={snap['queue_depth']} "
                f"sim/wall={snap['sim_wall_ratio']:.3g}")
        self.sink(line)
        hook = self.beat_hook
        if hook is not None:
            hook(snap)
        return line

    def snapshot(self, sim: Any = None, wall: float | None = None) -> dict:
        """Current run-rate metrics as a flat dict (CSV/JSON-friendly).

        Every value is a builtin ``int``/``float``/``str``/``None`` — no
        numpy scalars and no references back into the simulator — so the
        snapshot pickles cleanly across the campaign worker→parent queue.
        """
        wall = perf_counter() if wall is None else wall
        elapsed = float(wall - self.start_wall)
        now = float(getattr(sim, "now", 0.0)) if sim is not None else 0.0
        start_sim = self.start_sim if self.start_sim is not None else 0.0
        sim_span = now - start_sim if sim is not None else 0.0
        return {
            "events": int(self.events),
            "wall_seconds": elapsed,
            "events_per_sec": self.events / elapsed if elapsed > 0 else 0.0,
            "sim_time": now,
            "sim_wall_ratio": sim_span / elapsed if elapsed > 0 else 0.0,
            "queue_depth": int(getattr(sim, "pending", 0)) if sim is not None else 0,
            "heartbeats": int(self.heartbeats),
            "rollbacks": int(self.rollbacks),
            "rolled_back_events": int(self.rolled_back_events),
            "max_rollback_depth": int(self.max_rollback_depth),
            "reallocs": int(self.reallocs),
            "realloc_flows_touched": int(self.realloc_flows),
            "realloc_rescheduled": int(self.realloc_rescheduled),
            "realloc_preserved": int(self.realloc_preserved),
            "queue_migrations": int(self.queue_migrations),
            "queue_migrated_events": int(self.queue_migrated_events),
            "queue_backend": self.queue_backend,
            "gvt_rounds": int(self.gvt_rounds),
            "gvt": float(self.gvt),
            "commit_efficiency": ((self.events - self.rolled_back_events)
                                  / self.events if self.events else 1.0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Telemetry events={self.events} heartbeats={self.heartbeats}>"


def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)
