"""Execution harnesses: brokers that drive jobs through a grid.

Where :mod:`~repro.middleware.scheduling` holds pure *policy*, this module
holds the *mechanism*: entities that accept jobs, consult a policy, stage
data, submit to machines, and collect statistics.  Three harnesses cover
the execution styles of the surveyed simulators:

:class:`GridRunner`
    Push-mode broker for independent jobs — Bricks/GridSim style.  A job is
    dispatched at its submission time to the site the policy picks (or a
    static batch plan fixes), inputs are staged from best replicas, output
    is stored and registered.
:class:`WorkQueueRunner`
    Pull-mode self-scheduling: one central queue, each free PE grabs the
    next job ("WorkQueue" in the scheduling literature) — the simplest
    *runtime* scheduling category.
:class:`DagRunner`
    Workflow execution honouring precedence and inter-task data movement —
    SimGrid's application model, runnable from a compile-time HEFT plan or
    a runtime per-ready-task policy (benchmark E9 compares the two).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional, Sequence

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..hosts.site import Grid
from ..network.transfer import FileSpec
from .catalog import ReplicaCatalog
from .jobs import Dag, Job, JobState
from .scheduling import BatchScheduler, SchedulingContext, TaskScheduler

__all__ = ["GridRunner", "WorkQueueRunner", "DagRunner"]


class _RunnerBase:
    """Shared staging/completion machinery for all harnesses."""

    def __init__(self, sim: Simulator, grid: Grid,
                 catalog: Optional[ReplicaCatalog] = None,
                 replication=None, name: str = "runner") -> None:
        self.sim = sim
        self.grid = grid
        self.catalog = catalog
        self.replication = replication
        self.ctx = SchedulingContext(grid, catalog)
        self.monitor = Monitor(name)
        self.completed: list[Job] = []
        self.failed: list[Job] = []

    # -- staging ------------------------------------------------------------------

    def _stage_inputs(self, job: Job, site_name: str, then) -> None:
        """Fetch missing input files to *site_name*, then call ``then()``."""
        site = self.grid.site(site_name)
        if self.replication is not None:
            for f in job.input_files:
                self.replication.on_access(f.name, site_name)
        missing = [f for f in job.input_files if not site.has_file(f.name)]
        if not missing or self.catalog is None:
            for f in job.input_files:
                if site.has_file(f.name):
                    site.disk.touch(f.name)
            then()
            return
        job.transition(JobState.STAGING, self.sim.now)
        pending = [len(missing)]

        def one_done(ticket, file: FileSpec, src: str) -> None:
            if not getattr(ticket, "failed", False):
                # A fetch the outage ate must not count as a remote read —
                # and above all must not register a phantom replica for
                # bytes that never arrived.
                self.monitor.counter("remote_fetches").increment(self.sim.now)
                self.monitor.tally("remote_bytes").record(file.size)
                if self.replication is not None:
                    self.replication.on_fetch(file, src, site_name)
            pending[0] -= 1
            if pending[0] == 0:
                then()

        for f in missing:
            src = self.catalog.best_replica(f.name, site_name)
            ticket = self.grid.transfers.fetch(f, src, site_name)
            ticket._subscribe(lambda t, f=f, src=src: one_done(t, f, src))

    def _execute(self, job: Job, site_name: str) -> None:
        site = self.grid.site(site_name)
        if job.state is not JobState.RUNNING:
            job.transition(JobState.RUNNING, self.sim.now)
        run = site.submit(job)
        run._subscribe(lambda _r: self._job_done(job, site_name))

    def _job_done(self, job: Job, site_name: str) -> None:
        job.transition(JobState.DONE, self.sim.now)
        self.completed.append(job)
        self.monitor.tally("turnaround").record(job.turnaround)
        self.monitor.counter(f"jobs@{site_name}").increment(self.sim.now)
        if job.output_size > 0:
            out = FileSpec(f"out-{job.id}", job.output_size)
            site = self.grid.site(site_name)
            if site.disk is not None:
                site.disk.make_room(out.size, "lru")
                site.disk.store(out)
                if self.catalog is not None:
                    self.catalog.register(out, site_name)
        self._after_completion(job, site_name)

    def _after_completion(self, job: Job, site_name: str) -> None:
        """Hook for pull-mode / DAG continuation."""

    # -- reporting ------------------------------------------------------------------

    @property
    def mean_turnaround(self) -> float:
        """Mean job turnaround over completed jobs."""
        return self.monitor.tally("turnaround").mean

    @property
    def makespan(self) -> float:
        """Last completion minus first submission (NaN before any finish)."""
        if not self.completed:
            return math.nan
        return (max(j.finished for j in self.completed)
                - min(j.submitted for j in self.completed))

    def remote_fraction(self) -> float:
        """Fraction of input reads that needed a network fetch."""
        fetched = self.monitor.counter("remote_fetches").count
        total = self.monitor.counter("input_reads").count
        return fetched / total if total else 0.0


class GridRunner(_RunnerBase):
    """Push-mode broker: policy-per-job or a static batch plan.

    Pass either ``scheduler`` (an online :class:`TaskScheduler`) or
    ``batch`` (a :class:`BatchScheduler`, whose plan is computed over the
    first ``submit_all`` call's jobs).
    """

    def __init__(self, sim: Simulator, grid: Grid,
                 scheduler: Optional[TaskScheduler] = None,
                 batch: Optional[BatchScheduler] = None,
                 catalog: Optional[ReplicaCatalog] = None,
                 replication=None) -> None:
        if (scheduler is None) == (batch is None):
            raise ConfigurationError("provide exactly one of scheduler / batch")
        super().__init__(sim, grid, catalog, replication, name="grid-runner")
        self.scheduler = scheduler
        self.batch = batch
        self._plan: dict[int, str] = {}

    def submit_all(self, jobs: Sequence[Job]) -> None:
        """Register a bag of jobs; each dispatches at its ``submitted`` time."""
        if self.batch is not None:
            self._plan.update(self.batch.plan(jobs, self.ctx))
        for job in jobs:
            self.sim.schedule_at(max(job.submitted, self.sim.now),
                                 self._dispatch, job, label="dispatch")

    def _dispatch(self, job: Job) -> None:
        for f in job.input_files:
            self.monitor.counter("input_reads").increment(self.sim.now)
        site_name = (self._plan[job.id] if self.batch is not None
                     else self.scheduler.select_site(job, self.ctx))
        job.site = site_name
        job.transition(JobState.QUEUED, self.sim.now)
        self._stage_inputs(job, site_name, lambda: self._execute(job, site_name))


class WorkQueueRunner(_RunnerBase):
    """Pull-mode self-scheduling: free PEs drain one central queue.

    The runtime-scheduling baseline: no estimates, no plan — naturally
    load-balancing under background-load churn, at the cost of ignoring
    data locality and heterogeneity.
    """

    def __init__(self, sim: Simulator, grid: Grid,
                 catalog: Optional[ReplicaCatalog] = None,
                 replication=None) -> None:
        super().__init__(sim, grid, catalog, replication, name="workqueue")
        self._queue: deque[Job] = deque()
        self._free: dict[str, int] = {
            s.name: s.total_pes for s in self.ctx.gis.compute_sites()}

    def submit_all(self, jobs: Sequence[Job]) -> None:
        """Enqueue jobs at their submission times; free PEs pull them."""
        for job in jobs:
            self.sim.schedule_at(max(job.submitted, self.sim.now),
                                 self._enqueue, job, label="enqueue")

    def _enqueue(self, job: Job) -> None:
        for f in job.input_files:
            self.monitor.counter("input_reads").increment(self.sim.now)
        job.transition(JobState.QUEUED, self.sim.now)
        self._queue.append(job)
        self._fill()

    def _fill(self) -> None:
        while self._queue:
            # fastest free site first: self-scheduling still prefers speed
            candidates = [n for n, k in self._free.items() if k > 0]
            if not candidates:
                return
            site_name = max(candidates, key=lambda n: (
                self.ctx.site_rating(self.grid.site(n)), n))
            self._free[site_name] -= 1
            job = self._queue.popleft()
            job.site = site_name
            self._stage_inputs(job, site_name,
                               lambda j=job, s=site_name: self._execute(j, s))

    def _after_completion(self, job: Job, site_name: str) -> None:
        self._free[site_name] += 1
        self._fill()


class DagRunner(_RunnerBase):
    """Workflow execution with precedence and inter-site data movement.

    ``plan`` fixes every placement up front (compile-time scheduling);
    ``scheduler`` decides per ready task (runtime scheduling).  Edge data
    ships ``parent site -> child site`` through the grid's transfer
    service; a child starts when all parents finished *and* their data
    arrived.
    """

    def __init__(self, sim: Simulator, grid: Grid, dag: Dag,
                 plan: Optional[dict[int, str]] = None,
                 scheduler: Optional[TaskScheduler] = None) -> None:
        if (plan is None) == (scheduler is None):
            raise ConfigurationError("provide exactly one of plan / scheduler")
        super().__init__(sim, grid, name="dag-runner")
        self.dag = dag
        self.plan = plan
        self.scheduler = scheduler
        self._waiting_deps: dict[int, int] = {}
        self._started = False

    def start(self) -> None:
        """Release the DAG's root tasks (call once, then run the sim)."""
        if self._started:
            raise ConfigurationError("DagRunner.start() called twice")
        self._started = True
        for job in self.dag.jobs:
            self._waiting_deps[job.id] = len(self.dag.predecessors(job.id))
            job.submitted = self.sim.now
        for job in self.dag.roots():
            self.sim.schedule(0.0, self._release, job, label="dag_root")

    def _release(self, job: Job) -> None:
        site_name = (self.plan[job.id] if self.plan is not None
                     else self.scheduler.select_site(job, self.ctx))
        job.site = site_name
        job.transition(JobState.QUEUED, self.sim.now)
        if self.plan is None:
            # Runtime mode: the placement was only just decided, so parent
            # data ships now (no compute/communication overlap — the
            # intrinsic handicap of runtime DAG scheduling).
            pending = [1]  # barrier primed with one slot for the loop itself

            def arrived(_t=None) -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    self._execute(job, site_name)

            for pid, data in self.dag.predecessors(job.id).items():
                src = self.dag.job(pid).site
                if data > 0 and src is not None and src != site_name:
                    pending[0] += 1
                    ticket = self.grid.transfers.fetch(
                        FileSpec(f"edge-{pid}-{job.id}", data), src, site_name)
                    ticket._subscribe(arrived)
            arrived()  # consume the primer slot
        else:
            self._execute(job, site_name)

    def _after_completion(self, job: Job, site_name: str) -> None:
        for child_id, data in self.dag.successors(job.id).items():
            child = self.dag.job(child_id)
            self._ship_then_countdown(job, child, data)

    def _ship_then_countdown(self, parent: Job, child: Job, data: float) -> None:
        def arrived(_t=None) -> None:
            self._waiting_deps[child.id] -= 1
            if self._waiting_deps[child.id] == 0:
                self._release(child)

        # Compile-time mode knows the child's placement already, so the
        # edge data ships eagerly at parent completion — communication
        # overlaps with unrelated compute, HEFT's key advantage.
        if self.plan is not None and data > 0:
            src, dst = self.plan[parent.id], self.plan[child.id]
            if src != dst:
                ticket = self.grid.transfers.fetch(
                    FileSpec(f"edge-{parent.id}-{child.id}", data), src, dst)
                ticket._subscribe(arrived)
                return
        arrived()

    @property
    def makespan(self) -> float:
        """Workflow completion time (NaN until every task is done)."""
        if len(self.completed) != len(self.dag):
            return math.nan
        return max(j.finished for j in self.completed)
