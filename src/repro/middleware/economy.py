"""Computational economy: GridSim's deadline-and-budget-constrained broker.

The paper's GridSim section: "GridSim focuses on Grid economy, where the
scheduling involves the notions of producers (resource owners), consumers
(end-users) and brokers ... mainly used to study cost-time optimization
algorithms for scheduling task farming applications on heterogeneous Grids,
considering economy based distributed resource management, dealing with
deadline and budget constraints."

This module reproduces Buyya's two DBC strategies:

* **time optimization** — finish as early as possible while total spend
  stays within budget: each gridlet goes to the resource with the earliest
  predicted completion the remaining budget can still afford.
* **cost optimization** — spend as little as possible while finishing by
  the deadline: each gridlet goes to the *cheapest* resource whose
  predicted completion meets the deadline.

Gridlets that cannot be placed within (deadline, budget) fail — the broker
never overspends (tested invariant: ``spent <= budget`` always).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, EconomyError
from ..core.monitor import Monitor
from ..hosts.site import Grid
from .jobs import Job, JobState

__all__ = ["ResourceOffer", "EconomyBroker"]


@dataclass(frozen=True, slots=True)
class ResourceOffer:
    """A priced resource: running one MI at *site* costs ``price_per_mi``."""

    site: str
    price_per_mi: float

    def __post_init__(self) -> None:
        if self.price_per_mi < 0:
            raise ConfigurationError(
                f"offer for {self.site!r}: price must be >= 0")

    def job_cost(self, length: float) -> float:
        """Price of running *length* MI at this resource."""
        return length * self.price_per_mi


class EconomyBroker:
    """Deadline/budget-constrained task-farm broker.

    Parameters
    ----------
    offers:
        The priced resources (sites must exist in *grid* and have machines).
    deadline:
        Absolute completion deadline for every gridlet.
    budget:
        Total spend allowed across the whole farm.
    strategy:
        ``"time"`` or ``"cost"`` (the two DBC optimizations).
    """

    def __init__(self, sim: Simulator, grid: Grid,
                 offers: Sequence[ResourceOffer], deadline: float,
                 budget: float, strategy: str = "time") -> None:
        if strategy not in ("time", "cost"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if deadline <= 0 or budget < 0:
            raise ConfigurationError("deadline must be > 0 and budget >= 0")
        if not offers:
            raise ConfigurationError("need at least one resource offer")
        seen = set()
        for o in offers:
            if o.site in seen:
                raise ConfigurationError(f"duplicate offer for {o.site!r}")
            seen.add(o.site)
            if not grid.site(o.site).machines:
                raise ConfigurationError(f"offer site {o.site!r} has no machines")
        self.sim = sim
        self.grid = grid
        self.offers = {o.site: o for o in offers}
        self.deadline = float(deadline)
        self.budget = float(budget)
        self.strategy = strategy
        self.spent = 0.0
        self.committed = 0.0
        self.monitor = Monitor("economy-broker")
        self.completed: list[Job] = []
        self.failed: list[Job] = []

    # -- dispatch ---------------------------------------------------------------

    def submit_all(self, jobs: Sequence[Job]) -> None:
        """Schedule each gridlet's dispatch at its submission time."""
        for job in jobs:
            self.sim.schedule_at(max(job.submitted, self.sim.now),
                                 self._dispatch, job, label="econ_dispatch")

    def _affordable(self, job: Job, offer: ResourceOffer) -> bool:
        return self.committed + offer.job_cost(job.length) <= self.budget + 1e-9

    def _feasible(self, job: Job, offer: ResourceOffer) -> bool:
        site = self.grid.site(offer.site)
        return site.estimated_completion(job.length) <= self.deadline + 1e-9

    def _dispatch(self, job: Job) -> None:
        candidates = [o for o in self.offers.values()
                      if self._affordable(job, o) and self._feasible(job, o)]
        if not candidates:
            job.transition(JobState.FAILED, self.sim.now)
            self.failed.append(job)
            self.monitor.counter("rejected").increment(self.sim.now)
            return
        if self.strategy == "time":
            offer = min(candidates, key=lambda o: (
                self.grid.site(o.site).estimated_completion(job.length),
                o.price_per_mi, o.site))
        else:
            offer = min(candidates, key=lambda o: (
                o.price_per_mi,
                self.grid.site(o.site).estimated_completion(job.length),
                o.site))
        cost = offer.job_cost(job.length)
        self.committed += cost
        job.site = offer.site
        job.cost = cost
        job.transition(JobState.QUEUED, self.sim.now)
        job.transition(JobState.RUNNING, self.sim.now)
        run = self.grid.site(offer.site).submit(job)
        run._subscribe(lambda _r, j=job: self._done(j))

    def _done(self, job: Job) -> None:
        job.transition(JobState.DONE, self.sim.now)
        self.spent += job.cost
        if self.spent > self.budget + 1e-6:  # pragma: no cover - invariant
            raise EconomyError(
                f"broker overspent: {self.spent} > budget {self.budget}")
        self.completed.append(job)
        self.monitor.tally("job_cost").record(job.cost)
        self.monitor.tally("turnaround").record(job.turnaround)
        if not job.met_deadline:
            self.monitor.counter("deadline_misses").increment(self.sim.now)

    # -- outcome metrics -------------------------------------------------------------

    @property
    def completion_rate(self) -> float:
        """Completed fraction of all dispatched-or-rejected gridlets."""
        total = len(self.completed) + len(self.failed)
        return len(self.completed) / total if total else math.nan

    @property
    def deadline_misses(self) -> int:
        """Admitted jobs that finished after the deadline (should be 0)."""
        return self.monitor.counter("deadline_misses").count

    @property
    def makespan(self) -> float:
        """Completion time of the last finished gridlet."""
        if not self.completed:
            return math.nan
        return max(j.finished for j in self.completed)

    def summary(self) -> dict[str, float]:
        """The experiment row: completion/spend/makespan/misses."""
        return {
            "strategy": self.strategy,
            "completed": len(self.completed),
            "failed": len(self.failed),
            "completion_rate": self.completion_rate,
            "spent": self.spent,
            "budget": self.budget,
            "makespan": self.makespan,
            "deadline_misses": self.deadline_misses,
        }
