"""Data replication strategies: pull (OptorSim), push (ChicagoSim), agent (MONARC).

The paper contrasts three replication philosophies among the surveyed
simulators:

* OptorSim investigates "the stability and transient behavior of replication
  optimization methods" with **pull** strategies — a site decides, at the
  moment it fetches a remote file, whether to keep a local replica and what
  to evict;
* ChicagoSim "allows for data replication but with a **push** model in
  which, when a site contains a popular data file, it will replicate it to
  remote sites";
* MONARC's LHC study showed "the role of using a **data replication agent**
  for the intelligent transferring of the produced data" from T0 to the T1
  centres.

All strategies keep the replica catalog consistent: every stored replica is
registered, every eviction unregistered, and the *last* copy of a file is
never evicted (the data-loss guard OptorSim's economics implicitly rely on).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.monitor import Monitor
from ..hosts.site import Grid
from ..network.transfer import FileSpec
from .catalog import ReplicaCatalog

__all__ = [
    "ReplicationStrategy",
    "NoReplication",
    "LruReplication",
    "LfuReplication",
    "EconomicReplication",
    "PushReplication",
    "DataReplicationAgent",
]


class ReplicationStrategy:
    """Base class: hooks the job runners call.

    ``on_access``  — every logical input read (hit or miss) at a site.
    ``on_fetch``   — a remote fetch just completed ``src -> dst``; the
    strategy decides whether *dst* keeps a replica.
    """

    name = "abstract"

    def __init__(self, sim: Simulator, grid: Grid, catalog: ReplicaCatalog,
                 protected: Iterable[str] = ()) -> None:
        self.sim = sim
        self.grid = grid
        self.catalog = catalog
        self.protected = set(protected)
        self.monitor = Monitor(f"replication-{self.name}")
        self.replicas_created = 0
        self.replicas_evicted = 0

    def on_access(self, fname: str, site: str) -> None:
        """Default: no bookkeeping."""

    def on_fetch(self, file: FileSpec, src: str, dst: str) -> None:
        """Default: do nothing (stream-only)."""

    # -- shared machinery ---------------------------------------------------------

    def _evictable(self, site_name: str, incoming: FileSpec) -> list[str]:
        """Files at *site_name* that may be evicted for *incoming*."""
        disk = self.grid.site(site_name).disk
        out = []
        for f in disk.files:
            if f.name == incoming.name:
                continue
            if self.catalog.has(f.name) and self.catalog.replica_count(f.name) <= 1:
                continue  # never delete the last copy
            out.append(f.name)
        return out

    def _store_replica(self, file: FileSpec, dst: str, key) -> bool:
        """Store *file* at *dst*, evicting by ``key(fname) -> sort key``.

        Returns False (and stores nothing) when the site is protected,
        diskless, the file can never fit, or eviction is vetoed by *key*
        returning ``None`` for every candidate.
        """
        if dst in self.protected:
            return False
        site = self.grid.site(dst)
        disk = site.disk
        if disk is None or file.size > disk.capacity or disk.has(file.name):
            return False
        while disk.free < file.size:
            candidates = [(key(n), n) for n in self._evictable(dst, file)]
            candidates = [(k, n) for k, n in candidates if k is not None]
            if not candidates:
                return False
            _, victim = min(candidates)
            disk.delete(victim)
            if self.catalog.has(victim):
                self.catalog.unregister(victim, dst)
            self.replicas_evicted += 1
            self.monitor.counter("evictions").increment(self.sim.now)
        disk.store(file)
        self.catalog.register(file, dst)
        self.replicas_created += 1
        self.monitor.counter("replications").increment(self.sim.now)
        return True


class NoReplication(ReplicationStrategy):
    """Stream remote reads; never keep a copy.  The paper's baseline."""

    name = "none"


class LruReplication(ReplicationStrategy):
    """Always replicate; evict the least-recently-used replica."""

    name = "lru"

    def on_fetch(self, file: FileSpec, src: str, dst: str) -> None:
        disk = self.grid.site(dst).disk
        self._store_replica(
            file, dst,
            key=lambda n: (disk._last_access.get(n, 0.0), n))  # noqa: SLF001


class LfuReplication(ReplicationStrategy):
    """Always replicate; evict the least-frequently-used replica."""

    name = "lfu"

    def on_fetch(self, file: FileSpec, src: str, dst: str) -> None:
        disk = self.grid.site(dst).disk
        self._store_replica(
            file, dst,
            key=lambda n: (disk.access_count(n), disk._last_access.get(n, 0.0), n))  # noqa: SLF001


class EconomicReplication(ReplicationStrategy):
    """OptorSim's economic model, simplified: replicate only when the new
    file's predicted value exceeds the victim's.

    Value of a file at a site = number of accesses in the trailing
    ``window`` of simulated time (the binomial-prediction surrogate: recent
    popularity predicts near-future demand).  Eviction of a victim worth
    more than the incoming file is vetoed — which is exactly how the
    economic optimizer stabilizes replica placement where LRU/LFU churn.
    """

    name = "economic"

    def __init__(self, sim: Simulator, grid: Grid, catalog: ReplicaCatalog,
                 protected: Iterable[str] = (), window: float = 500.0) -> None:
        super().__init__(sim, grid, catalog, protected)
        if window <= 0:
            raise ConfigurationError("window must be > 0")
        self.window = float(window)
        self._events: dict[str, deque[tuple[float, str]]] = {}

    def on_access(self, fname: str, site: str) -> None:
        q = self._events.setdefault(site, deque())
        q.append((self.sim.now, fname))
        cutoff = self.sim.now - self.window
        while q and q[0][0] < cutoff:
            q.popleft()

    def value(self, fname: str, site: str) -> int:
        """Accesses to *fname* at *site* within the trailing window."""
        cutoff = self.sim.now - self.window
        return sum(1 for t, n in self._events.get(site, ())
                   if n == fname and t >= cutoff)

    def on_fetch(self, file: FileSpec, src: str, dst: str) -> None:
        new_value = self.value(file.name, dst)

        def key(victim: str):
            v = self.value(victim, dst)
            if v >= new_value and new_value > 0:
                return None  # veto: victim is worth at least as much
            if new_value == 0 and v > 0:
                return None
            return (v, victim)

        self._store_replica(file, dst, key=key)


class PushReplication(ReplicationStrategy):
    """ChicagoSim's push model: popular files propagate from their holder.

    Remote fetches of a file *from* a site are counted; when a file's
    popularity crosses ``threshold``, the holder pushes copies to the
    ``fanout`` sites with compute that do not yet hold it (closest first by
    network cost).  Pushed copies are stored with LRU eviction at the
    receiver.
    """

    name = "push"

    def __init__(self, sim: Simulator, grid: Grid, catalog: ReplicaCatalog,
                 protected: Iterable[str] = (), threshold: int = 3,
                 fanout: int = 2) -> None:
        super().__init__(sim, grid, catalog, protected)
        if threshold < 1 or fanout < 1:
            raise ConfigurationError("threshold and fanout must be >= 1")
        self.threshold = threshold
        self.fanout = fanout
        self._remote_reads: dict[str, int] = {}
        self._pushed: set[str] = set()
        self.pushes = 0

    def on_fetch(self, file: FileSpec, src: str, dst: str) -> None:
        n = self._remote_reads.get(file.name, 0) + 1
        self._remote_reads[file.name] = n
        if n < self.threshold or file.name in self._pushed:
            return
        self._pushed.add(file.name)
        targets = self._push_targets(file)
        for t in targets:
            ticket = self.grid.transfers.fetch(file, src, t)
            ticket._subscribe(lambda tk, f=file, d=t: self._push_arrived(tk, f, d))

    def _push_targets(self, file: FileSpec) -> list[str]:
        holders = set(self.catalog.locations(file.name)) if self.catalog.has(file.name) else set()
        candidates = [s.name for s in self.grid.sites.values()
                      if s.machines and s.disk is not None
                      and s.name not in holders and not s.has_file(file.name)]
        if not holders:
            return sorted(candidates)[: self.fanout]
        src = sorted(holders)[0]
        topo = self.grid.topology
        candidates.sort(key=lambda c: (file.size / topo.bottleneck_bandwidth(src, c)
                                       + topo.path_latency(src, c), c))
        return candidates[: self.fanout]

    def _push_arrived(self, ticket, file: FileSpec, dst: str) -> None:
        if getattr(ticket, "failed", False):
            self._pushed.discard(file.name)  # outage ate the push; allow a redo
            return
        disk = self.grid.site(dst).disk
        stored = self._store_replica(
            file, dst,
            key=lambda n: (disk._last_access.get(n, 0.0), n))  # noqa: SLF001
        if stored:
            self.pushes += 1


class DataReplicationAgent:
    """MONARC's agent: streams newly produced data from a source tier down.

    Subscribed to a producer site (T0), the agent batches announced files
    and ships one copy to each target (the T1 centres) as transfer slots
    allow, keeping a bounded number of transfers in flight per target.  The
    Legrand 2005 study's conclusion — that intelligent agent-driven
    transfer smooths the burst load a plain fetch-on-demand pattern creates
    — is reproduced in benchmark E5 by toggling this agent.
    """

    def __init__(self, sim: Simulator, grid: Grid, catalog: ReplicaCatalog,
                 source: str, targets: Iterable[str],
                 max_in_flight: int = 4, retry_delay: float = 5.0) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1")
        if retry_delay <= 0:
            raise ConfigurationError("retry_delay must be > 0")
        self.retry_delay = retry_delay
        self.sim = sim
        self.grid = grid
        self.catalog = catalog
        self.source = source
        self.targets = sorted(targets)
        if not self.targets:
            raise ConfigurationError("agent needs at least one target")
        self.max_in_flight = max_in_flight
        self._queues: dict[str, deque[FileSpec]] = {t: deque() for t in self.targets}
        self._in_flight: dict[str, int] = {t: 0 for t in self.targets}
        self.monitor = Monitor("replication-agent")
        self.shipped = 0

    def announce(self, file: FileSpec) -> None:
        """A new file exists at the source; queue it for every target."""
        for t in self.targets:
            self._queues[t].append(file)
            self._pump(t)

    def backlog(self, target: str) -> int:
        """Files queued (not yet in flight) for one target."""
        return len(self._queues[target])

    @property
    def total_backlog(self) -> int:
        """Queued files summed over all targets."""
        return sum(len(q) for q in self._queues.values())

    def _pump(self, target: str) -> None:
        while self._in_flight[target] < self.max_in_flight and self._queues[target]:
            file = self._queues[target].popleft()
            self._in_flight[target] += 1
            ticket = self.grid.transfers.fetch(file, self.source, target)
            ticket._subscribe(lambda tk, f=file, tgt=target: self._arrived(tk, f, tgt))

    def _arrived(self, ticket, file: FileSpec, target: str) -> None:
        self._in_flight[target] -= 1
        if getattr(ticket, "failed", False):
            # The route died mid-ship: the copy never landed, so do not
            # register it.  Re-queue at the back and pump again after a
            # delay — an immediate pump against a still-dead route would
            # spin (a no-route abort fails at the same timestamp).
            self._queues[target].append(file)
            self.sim.schedule(self.retry_delay, self._pump, target,
                              label="agent_retry")
            return
        disk = self.grid.site(target).disk
        if disk is not None and not disk.has(file.name):
            if disk.free >= file.size:
                disk.store(file)
                self.catalog.register(file, target)
        self.shipped += 1
        self.monitor.counter("files_shipped").increment(self.sim.now)
        self.monitor.tally("ship_bytes").record(file.size)
        self._pump(target)
