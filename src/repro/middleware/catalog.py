"""Replica catalog and Grid information service.

Two directory services every data grid assumes:

* :class:`ReplicaCatalog` — logical file name → the sites holding a
  physical copy, with best-replica selection by network cost.  OptorSim's
  optimizers, ChicagoSim's dataset scheduler, and MONARC's replication
  agent all consult it.
* :class:`GridInformationService` — the resource-discovery side (GridSim's
  GIS): which sites exist, their capacity, and their current load, for
  schedulers that rank sites.

Consistency rules are enforced (registering a replica at a site that does
not hold the file's bytes is the catalog bug class; here registration and
disk inventory are cross-checked when the catalog is bound to a grid).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.errors import CatalogError, RoutingError
from ..hosts.site import Grid, Site
from ..network.transfer import FileSpec

__all__ = ["ReplicaCatalog", "GridInformationService"]


class ReplicaCatalog:
    """Logical file name → sites holding a replica.

    When constructed with a :class:`Grid`, registrations are verified
    against site disks (``strict=True``) so the catalog can never claim a
    replica that is not physically present.
    """

    def __init__(self, grid: Optional[Grid] = None, strict: bool = True) -> None:
        self.grid = grid
        self.strict = strict and grid is not None
        self._locations: dict[str, set[str]] = {}
        self._specs: dict[str, FileSpec] = {}

    # -- mutation -------------------------------------------------------------

    def register(self, file: FileSpec, site: str) -> None:
        """Record that *site* holds *file* (validated against its disk)."""
        known = self._specs.get(file.name)
        if known is not None and known.size != file.size:
            raise CatalogError(
                f"file {file.name!r} re-registered with different size "
                f"({file.size} != {known.size})")
        if self.strict:
            s = self.grid.site(site)
            if not s.has_file(file.name):
                raise CatalogError(
                    f"site {site!r} does not physically hold {file.name!r}")
        self._specs[file.name] = file
        self._locations.setdefault(file.name, set()).add(site)

    def unregister(self, fname: str, site: str) -> None:
        """Remove one replica record; the last record removes the file."""
        sites = self._locations.get(fname)
        if not sites or site not in sites:
            raise CatalogError(f"no replica of {fname!r} registered at {site!r}")
        sites.discard(site)
        if not sites:
            del self._locations[fname]
            del self._specs[fname]

    def ingest_site(self, site: Site) -> int:
        """Bulk-register everything already on a site's disk."""
        if site.disk is None:
            return 0
        n = 0
        for f in site.disk.files:
            self.register(f, site.name)
            n += 1
        return n

    # -- queries ------------------------------------------------------------------

    def spec(self, fname: str) -> FileSpec:
        """The file's :class:`FileSpec` (CatalogError if unknown)."""
        try:
            return self._specs[fname]
        except KeyError:
            raise CatalogError(f"unknown file {fname!r}") from None

    def locations(self, fname: str) -> list[str]:
        """Sites holding the file, sorted for determinism."""
        return sorted(self._locations.get(fname, ()))

    def has(self, fname: str) -> bool:
        """True when at least one replica is registered."""
        return fname in self._locations

    def replica_count(self, fname: str) -> int:
        """Number of registered replicas (0 if unknown)."""
        return len(self._locations.get(fname, ()))

    @property
    def files(self) -> list[str]:
        """All known logical file names, sorted."""
        return sorted(self._locations)

    def best_replica(self, fname: str, dst: str) -> str:
        """The cheapest source site to fetch *fname* to *dst* from.

        Cost = size/bottleneck_bandwidth + path latency, computed on the
        grid topology; a replica already at *dst* costs zero.  Without a
        bound grid, the lexicographically first location is returned.
        """
        sites = self.locations(fname)
        if not sites:
            raise CatalogError(f"no replica of {fname!r} anywhere")
        if dst in sites:
            return dst
        if self.grid is None:
            return sites[0]
        size = self.spec(fname).size
        topo = self.grid.topology

        def cost(src: str) -> tuple[float, str]:
            try:
                bw = topo.bottleneck_bandwidth(src, dst)
                return (size / bw + topo.path_latency(src, dst), src)
            except RoutingError:
                # Holder unreachable (its access link is down): worst
                # cost, so any reachable replica wins.  When none is, the
                # fetch itself fails on the no-route path — selection must
                # not crash the broker mid-outage.
                return (math.inf, src)

        return min(sites, key=cost)

    def __repr__(self) -> str:  # pragma: no cover
        reps = sum(len(s) for s in self._locations.values())
        return f"<ReplicaCatalog files={len(self._locations)} replicas={reps}>"


class GridInformationService:
    """Site discovery + load queries (the GIS every broker consults)."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid

    def compute_sites(self) -> list[Site]:
        """Sites with at least one machine, sorted by name."""
        return [self.grid.sites[n] for n in self.grid.site_names
                if self.grid.sites[n].machines]

    def total_pes(self) -> int:
        """PEs summed over all compute sites."""
        return sum(s.total_pes for s in self.compute_sites())

    def least_loaded_site(self) -> Site:
        """Fewest (running+queued) jobs per PE; ties broken by name."""
        sites = self.compute_sites()
        if not sites:
            raise CatalogError("no compute sites registered")
        return min(sites, key=lambda s: (
            (s.running_jobs + s.queued_jobs) / max(s.total_pes, 1), s.name))

    def fastest_site(self) -> Site:
        """The site with the highest aggregate MIPS."""
        sites = self.compute_sites()
        if not sites:
            raise CatalogError("no compute sites registered")
        return max(sites, key=lambda s: (s.total_mips, s.name))

    def site_load(self, name: str) -> float:
        """Jobs per PE at one site (the load-aware scheduler's metric)."""
        s = self.grid.site(name)
        return (s.running_jobs + s.queued_jobs) / max(s.total_pes, 1)
