"""Scheduler library: the policies the surveyed simulators study.

The taxonomy's *middleware characteristics* ("how the middleware system
schedules the jobs for execution inside a Grid") and the paper's survey map
onto three scheduler families, all implemented against one interface:

**Online (dynamic) site selectors** — decide per job at dispatch time:
  :class:`RandomScheduler`, :class:`RoundRobinScheduler`,
  :class:`LeastLoadedScheduler`, :class:`FastestSiteScheduler`,
  :class:`PredictiveScheduler` (Bricks: monitoring + prediction),
  :class:`DataPresentScheduler` / :class:`LocalScheduler` (ChicagoSim's
  data-location policies).

**Batch (static) mappers** — plan a whole bag of independent tasks from an
estimated-time-to-complete matrix: :class:`MinMinScheduler`,
:class:`MaxMinScheduler`, :class:`SufferageScheduler` (the classic
Braun et al. heuristics SimGrid-era papers evaluated).

**DAG (compile-time) mappers** — :class:`HeftScheduler` list-schedules a
:class:`~repro.middleware.jobs.Dag` onto heterogeneous sites including
transfer costs — SimGrid's "all scheduling decisions taken before the
execution" category.  The runtime counterpart is simply using an online
selector per ready task (see :class:`~repro.middleware.broker.DagRunner`).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.rng import Stream
from ..hosts.site import Grid, Site
from .catalog import GridInformationService, ReplicaCatalog
from .jobs import Dag, Job

__all__ = [
    "SchedulingContext",
    "TaskScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "FastestSiteScheduler",
    "PredictiveScheduler",
    "DataPresentScheduler",
    "LocalScheduler",
    "BatchScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "HeftScheduler",
]


class SchedulingContext:
    """Everything a policy may look at: grid, information service, catalog."""

    def __init__(self, grid: Grid, catalog: Optional[ReplicaCatalog] = None) -> None:
        self.grid = grid
        self.gis = GridInformationService(grid)
        self.catalog = catalog

    def compute_site_names(self) -> list[str]:
        """Names of sites with at least one machine."""
        return [s.name for s in self.gis.compute_sites()]

    def site_rating(self, site: Site) -> float:
        """Best single-PE MIPS at a site (the ETC matrix's speed entry)."""
        return max((m.rating * (1 - m.background_load) for m in site.machines),
                   default=0.0)


class TaskScheduler(abc.ABC):
    """Online scheduler interface: pick a site for one job, now."""

    name = "abstract"

    @abc.abstractmethod
    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        """Return the site name to run *job* at."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}>"


class RandomScheduler(TaskScheduler):
    """Uniform random site — the baseline every comparison needs."""

    name = "random"

    def __init__(self, stream: Stream) -> None:
        self.stream = stream

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        return self.stream.choice(ctx.compute_site_names())


class RoundRobinScheduler(TaskScheduler):
    """Cycle through compute sites in name order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        names = ctx.compute_site_names()
        if not names:
            raise ConfigurationError("no compute sites")
        site = names[self._next % len(names)]
        self._next += 1
        return site


class LeastLoadedScheduler(TaskScheduler):
    """Monitoring-driven: site with fewest jobs per PE right now."""

    name = "least-loaded"

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        return ctx.gis.least_loaded_site().name


class FastestSiteScheduler(TaskScheduler):
    """Greedy on raw capacity, blind to load."""

    name = "fastest"

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        return ctx.gis.fastest_site().name


class PredictiveScheduler(TaskScheduler):
    """Bricks-style: pick the minimum *predicted completion time*.

    Uses each site's :meth:`~repro.hosts.site.Site.estimated_completion`
    (queue state + current effective rating, i.e. monitoring plus a
    current-conditions-persist prediction — exactly Bricks'
    NWS-flavoured predictor).
    """

    name = "predictive"

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        sites = ctx.gis.compute_sites()
        if not sites:
            raise ConfigurationError("no compute sites")
        return min(sites, key=lambda s: (s.estimated_completion(job.length), s.name)).name


class DataPresentScheduler(TaskScheduler):
    """ChicagoSim's data-aware policy: run where the most input bytes are.

    Falls back to least-loaded among the tied sites (including the
    no-input case, where every site ties at zero).
    """

    name = "data-present"

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        sites = ctx.gis.compute_sites()
        if not sites:
            raise ConfigurationError("no compute sites")

        def local_bytes(s: Site) -> float:
            return sum(f.size for f in job.input_files if s.has_file(f.name))

        best = max(local_bytes(s) for s in sites)
        tied = [s for s in sites if local_bytes(s) == best]
        return min(tied, key=lambda s: (
            (s.running_jobs + s.queued_jobs) / max(s.total_pes, 1), s.name)).name


class LocalScheduler(TaskScheduler):
    """Always run at a fixed home site (ChicagoSim's 'local' policy)."""

    name = "local"

    def __init__(self, home: str) -> None:
        self.home = home

    def select_site(self, job: Job, ctx: SchedulingContext) -> str:
        return self.home


# -- batch heuristics ---------------------------------------------------------------


class BatchScheduler(abc.ABC):
    """Static mapper: plan a whole bag of independent jobs at once.

    The plan is computed from the estimated-time-to-complete matrix
    ``etc[j][s] = job_j.length / rating(s)`` plus per-site accumulating
    ready times — the standard Braun et al. formulation.
    """

    name = "abstract-batch"

    def plan(self, jobs: Sequence[Job], ctx: SchedulingContext) -> dict[int, str]:
        sites = ctx.gis.compute_sites()
        if not sites:
            raise ConfigurationError("no compute sites")
        ratings = {s.name: ctx.site_rating(s) for s in sites}
        # Multiple PEs drain a site's queue faster: model each site as
        # `pes` lanes and track per-lane ready times.
        lanes = {s.name: [0.0] * max(s.total_pes, 1) for s in sites}
        unmapped = {j.id: j for j in jobs}
        mapping: dict[int, str] = {}
        while unmapped:
            choice = self._pick(unmapped, ratings, lanes)
            jid, site_name = choice
            job = unmapped.pop(jid)
            lane_times = lanes[site_name]
            i = min(range(len(lane_times)), key=lambda k: lane_times[k])
            lane_times[i] += job.length / ratings[site_name]
            mapping[jid] = site_name
        return mapping

    @staticmethod
    def _completion(job: Job, site: str, ratings: dict[str, float],
                    lanes: dict[str, list[float]]) -> float:
        return min(lanes[site]) + job.length / ratings[site]

    @abc.abstractmethod
    def _pick(self, unmapped: dict[int, Job], ratings: dict[str, float],
              lanes: dict[str, list[float]]) -> tuple[int, str]:
        """Choose the next (job id, site) pair to fix."""


class MinMinScheduler(BatchScheduler):
    """Map the job with the smallest best-case completion first."""

    name = "min-min"

    def _pick(self, unmapped, ratings, lanes):
        best = None
        for jid, job in sorted(unmapped.items()):
            site = min(ratings, key=lambda s: (self._completion(job, s, ratings, lanes), s))
            c = self._completion(job, site, ratings, lanes)
            if best is None or c < best[0]:
                best = (c, jid, site)
        return best[1], best[2]


class MaxMinScheduler(BatchScheduler):
    """Map the job with the *largest* best-case completion first —
    keeps long jobs from straggling at the end."""

    name = "max-min"

    def _pick(self, unmapped, ratings, lanes):
        best = None
        for jid, job in sorted(unmapped.items()):
            site = min(ratings, key=lambda s: (self._completion(job, s, ratings, lanes), s))
            c = self._completion(job, site, ratings, lanes)
            if best is None or c > best[0]:
                best = (c, jid, site)
        return best[1], best[2]


class SufferageScheduler(BatchScheduler):
    """Map the job that would *suffer* most if denied its best site."""

    name = "sufferage"

    def _pick(self, unmapped, ratings, lanes):
        best = None
        for jid, job in sorted(unmapped.items()):
            comps = sorted((self._completion(job, s, ratings, lanes), s)
                           for s in ratings)
            sufferage = (comps[1][0] - comps[0][0]) if len(comps) > 1 else 0.0
            if best is None or sufferage > best[0]:
                best = (sufferage, jid, comps[0][1])
        return best[1], best[2]


# -- DAG list scheduling --------------------------------------------------------------


class HeftScheduler:
    """Heterogeneous Earliest Finish Time for DAG workflows.

    Classic two-phase list scheduling: (1) upward ranks from average
    compute and communication costs; (2) greedy assignment of jobs in rank
    order to the site with the earliest finish time, charging transfer
    time ``data / bottleneck_bandwidth`` when parent and child sites
    differ.  This is the *compile time* scheduling category the paper
    attributes to SimGrid: every decision is fixed before execution.
    """

    name = "heft"

    def plan(self, dag: Dag, ctx: SchedulingContext) -> dict[int, str]:
        sites = ctx.gis.compute_sites()
        if not sites:
            raise ConfigurationError("no compute sites")
        ratings = {s.name: ctx.site_rating(s) for s in sites}
        avg_rate = sum(ratings.values()) / len(ratings)
        names = sorted(ratings)
        avg_bw = self._average_bandwidth(names, ctx)

        # Phase 1: upward ranks (reverse topological order).
        rank: dict[int, float] = {}
        for job in reversed(dag.topological_order()):
            succ = dag.successors(job.id)
            tail = max((data / avg_bw + rank[s] for s, data in succ.items()),
                       default=0.0)
            rank[job.id] = job.length / avg_rate + tail

        # Phase 2: EFT assignment in decreasing rank order.
        mapping: dict[int, str] = {}
        lanes = {s.name: [0.0] * max(s.total_pes, 1) for s in sites}
        finish: dict[int, float] = {}
        for job in sorted(dag.jobs, key=lambda j: (-rank[j.id], j.id)):
            best = None
            for sname in names:
                ready = 0.0
                for p, data in dag.predecessors(job.id).items():
                    comm = 0.0
                    if mapping[p] != sname and data > 0:
                        bw = ctx.grid.topology.bottleneck_bandwidth(mapping[p], sname)
                        comm = data / bw + ctx.grid.topology.path_latency(mapping[p], sname)
                    ready = max(ready, finish[p] + comm)
                lane_times = lanes[sname]
                i = min(range(len(lane_times)), key=lambda k: lane_times[k])
                start = max(ready, lane_times[i])
                eft = start + job.length / ratings[sname]
                if best is None or eft < best[0]:
                    best = (eft, sname, i, start)
            eft, sname, i, start = best
            lanes[sname][i] = eft
            finish[job.id] = eft
            mapping[job.id] = sname
        return mapping

    @staticmethod
    def _average_bandwidth(names: list[str], ctx: SchedulingContext) -> float:
        pairs = [(a, b) for a in names for b in names if a != b]
        if not pairs:
            return math.inf
        bws = [ctx.grid.topology.bottleneck_bandwidth(a, b) for a, b in pairs]
        finite = [b for b in bws if math.isfinite(b)]
        return sum(finite) / len(finite) if finite else math.inf
