"""Middleware substrate: jobs, directories, schedulers, brokers, economy,
replication — the policy layer of the taxonomy's four-component stack."""

from .broker import DagRunner, GridRunner, WorkQueueRunner
from .catalog import GridInformationService, ReplicaCatalog
from .economy import EconomyBroker, ResourceOffer
from .jobs import Dag, Job, JobState, set_job_observer
from .replication import (
    DataReplicationAgent,
    EconomicReplication,
    LfuReplication,
    LruReplication,
    NoReplication,
    PushReplication,
    ReplicationStrategy,
)
from .scheduling import (
    DataPresentScheduler,
    FastestSiteScheduler,
    HeftScheduler,
    LeastLoadedScheduler,
    LocalScheduler,
    MaxMinScheduler,
    MinMinScheduler,
    PredictiveScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SchedulingContext,
    SufferageScheduler,
    TaskScheduler,
)

__all__ = [
    "Job",
    "JobState",
    "Dag",
    "set_job_observer",
    "ReplicaCatalog",
    "GridInformationService",
    "SchedulingContext",
    "TaskScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "FastestSiteScheduler",
    "PredictiveScheduler",
    "DataPresentScheduler",
    "LocalScheduler",
    "MinMinScheduler",
    "MaxMinScheduler",
    "SufferageScheduler",
    "HeftScheduler",
    "GridRunner",
    "WorkQueueRunner",
    "DagRunner",
    "EconomyBroker",
    "ResourceOffer",
    "ReplicationStrategy",
    "NoReplication",
    "LruReplication",
    "LfuReplication",
    "EconomicReplication",
    "PushReplication",
    "DataReplicationAgent",
]
