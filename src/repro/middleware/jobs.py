"""Jobs, gridlets, and DAG workflows — the unit of work middleware moves.

Taxonomy *middleware/user applications*: every surveyed simulator pushes
some notion of job through some notion of scheduler.  This module fixes one
job vocabulary for all six models:

* :class:`Job` — GridSim's "gridlet": compute length (MI), input files to
  stage, an output size, and optional economy attributes (deadline,
  budget) used by the GridSim model.
* :class:`JobState` — lifecycle; transitions are validated so a scheduler
  bug (running a job twice, finishing an unstaged job) fails loudly.
* :class:`Dag` — precedence-constrained workflows for SimGrid-style
  compile-time scheduling: topological order, levels, and the critical
  path that HEFT-style ranks derive from.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.errors import ConfigurationError
from ..network.transfer import FileSpec

__all__ = ["JobState", "Job", "Dag", "set_job_observer"]

#: optional process-wide hook ``(job, to_state, now) -> None`` invoked on
#: every validated state transition.  Null-object protocol like the kernel's
#: ``Simulator._obs``: the disabled cost is one module-global check.  Jobs
#: deliberately don't know their simulator, so this lives at module scope;
#: ``repro.obs.Observation.observe_jobs()`` installs the tracing recorder.
_job_observer = None


def set_job_observer(observer) -> None:
    """Install (or with ``None`` remove) the global job-transition hook."""
    global _job_observer
    _job_observer = observer


class JobState(enum.Enum):
    """Lifecycle: CREATED → QUEUED → STAGING → RUNNING → DONE (or FAILED)."""

    CREATED = "created"
    QUEUED = "queued"
    STAGING = "staging"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


_ALLOWED = {
    JobState.CREATED: {JobState.QUEUED, JobState.FAILED},
    JobState.QUEUED: {JobState.STAGING, JobState.RUNNING, JobState.FAILED},
    JobState.STAGING: {JobState.RUNNING, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED},
    JobState.DONE: set(),
    JobState.FAILED: set(),
}


@dataclass
class Job:
    """One schedulable unit of work.

    Parameters
    ----------
    length:
        Compute demand in MI (millions of instructions).
    input_files:
        Files that must be present at the execution site before running.
    output_size:
        Bytes produced (shipped back / stored by data-grid models).
    deadline, budget:
        Economy constraints (GridSim model); ``inf`` = unconstrained.
    """

    id: int
    length: float
    input_files: tuple[FileSpec, ...] = ()
    output_size: float = 0.0
    submitted: float = 0.0
    deadline: float = math.inf
    budget: float = math.inf
    state: JobState = JobState.CREATED
    site: Optional[str] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    cost: float = 0.0
    #: diagnostic trail of (time, state) transitions
    history: list[tuple[float, JobState]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(f"job {self.id}: length must be > 0")
        if self.output_size < 0:
            raise ConfigurationError(f"job {self.id}: output_size must be >= 0")

    def transition(self, to: JobState, now: float) -> None:
        """Move to state *to*; illegal transitions raise."""
        if to not in _ALLOWED[self.state]:
            raise ConfigurationError(
                f"job {self.id}: illegal transition {self.state.value} -> {to.value}")
        self.state = to
        self.history.append((now, to))
        obs = _job_observer
        if obs is not None:
            obs(self, to, now)
        if to is JobState.RUNNING:
            self.started = now
        elif to in (JobState.DONE, JobState.FAILED):
            self.finished = now

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time (NaN while unfinished)."""
        return (self.finished - self.submitted) if self.finished is not None else math.nan

    @property
    def input_bytes(self) -> float:
        """Total bytes of input data the job must see locally."""
        return sum(f.size for f in self.input_files)

    @property
    def met_deadline(self) -> bool:
        """True when the job finished at or before its deadline."""
        return self.finished is not None and self.finished <= self.deadline

    def __hash__(self) -> int:
        return self.id

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Job {self.id} len={self.length:.4g} {self.state.value}>"


class Dag:
    """A precedence DAG of jobs (SimGrid-style application model).

    Edges carry the bytes the parent must ship to the child (communication
    cost for list schedulers).
    """

    def __init__(self) -> None:
        self._jobs: dict[int, Job] = {}
        self._succ: dict[int, dict[int, float]] = {}
        self._pred: dict[int, dict[int, float]] = {}

    def add_job(self, job: Job) -> Job:
        """Register *job* as a DAG node; ids must be unique."""
        if job.id in self._jobs:
            raise ConfigurationError(f"duplicate job id {job.id}")
        self._jobs[job.id] = job
        self._succ[job.id] = {}
        self._pred[job.id] = {}
        return job

    def add_edge(self, parent: int, child: int, data: float = 0.0) -> None:
        """parent must finish (and ship *data* bytes) before child starts."""
        for jid in (parent, child):
            if jid not in self._jobs:
                raise ConfigurationError(f"unknown job id {jid}")
        if parent == child:
            raise ConfigurationError("self-dependency")
        self._succ[parent][child] = float(data)
        self._pred[child][parent] = float(data)
        if self._has_cycle():
            del self._succ[parent][child]
            del self._pred[child][parent]
            raise ConfigurationError(
                f"edge {parent}->{child} would create a cycle")

    # -- queries ---------------------------------------------------------------

    @property
    def jobs(self) -> list[Job]:
        """All jobs, in insertion order."""
        return list(self._jobs.values())

    def job(self, jid: int) -> Job:
        """The job with id *jid* (KeyError if absent)."""
        return self._jobs[jid]

    def predecessors(self, jid: int) -> dict[int, float]:
        """``{parent id: edge bytes}`` for *jid*."""
        return dict(self._pred[jid])

    def successors(self, jid: int) -> dict[int, float]:
        """``{child id: edge bytes}`` for *jid*."""
        return dict(self._succ[jid])

    def roots(self) -> list[Job]:
        """Jobs with no predecessors (the DAG's entry tasks)."""
        return [j for j in self._jobs.values() if not self._pred[j.id]]

    def leaves(self) -> list[Job]:
        """Jobs with no successors (the DAG's exit tasks)."""
        return [j for j in self._jobs.values() if not self._succ[j.id]]

    def topological_order(self) -> list[Job]:
        """Kahn's algorithm; deterministic (ready set ordered by id)."""
        indeg = {jid: len(p) for jid, p in self._pred.items()}
        ready = sorted(jid for jid, d in indeg.items() if d == 0)
        order = []
        while ready:
            jid = ready.pop(0)
            order.append(self._jobs[jid])
            opened = []
            for s in self._succ[jid]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    opened.append(s)
            for s in sorted(opened):
                # insert keeping 'ready' sorted
                lo, hi = 0, len(ready)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if ready[mid] < s:
                        lo = mid + 1
                    else:
                        hi = mid
                ready.insert(lo, s)
        if len(order) != len(self._jobs):  # pragma: no cover - guarded by add_edge
            raise ConfigurationError("cycle detected")
        return order

    def _has_cycle(self) -> bool:
        try:
            indeg = {jid: len(p) for jid, p in self._pred.items()}
            ready = [jid for jid, d in indeg.items() if d == 0]
            seen = 0
            while ready:
                jid = ready.pop()
                seen += 1
                for s in self._succ[jid]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        ready.append(s)
            return seen != len(self._jobs)
        except KeyError:  # pragma: no cover
            return True

    def critical_path_length(self, rate: float, bandwidth: float) -> float:
        """Lower bound on makespan: longest compute+comm chain.

        *rate* converts MI to seconds, *bandwidth* converts edge bytes to
        seconds (both assumed uniform — the bound classic HEFT papers use).
        """
        if rate <= 0 or bandwidth <= 0:
            raise ConfigurationError("rate and bandwidth must be > 0")
        finish: dict[int, float] = {}
        for job in self.topological_order():
            start = 0.0
            for p, data in self._pred[job.id].items():
                start = max(start, finish[p] + data / bandwidth)
            finish[job.id] = start + job.length / rate
        return max(finish.values(), default=0.0)

    def __len__(self) -> int:
        return len(self._jobs)

    def __repr__(self) -> str:  # pragma: no cover
        edges = sum(len(s) for s in self._succ.values())
        return f"<Dag jobs={len(self._jobs)} edges={edges}>"
